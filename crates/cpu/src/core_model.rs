//! The ROB-limited core model.
//!
//! The reorder buffer is a fixed ring buffer ([`RobRing`]) and the core
//! exposes two execution paths with identical semantics:
//!
//! * [`Core::tick`] — the exact per-cycle step (retire up to `width`,
//!   then fetch/issue up to `width`), used whenever the core may
//!   interact with the outside world (pull a trace op, issue a memory
//!   access, retry a blocked op, emit trace events);
//! * [`Core::advance`] — a batched replay of a *span* of cycles during
//!   which [`Core::next_activity`] guarantees no interaction can occur.
//!   The replay drains whole retire-able spans in O(1) jumps (full-ROB
//!   stall and retire waits, steady-state compute cruising) and falls
//!   back to exact single-cycle replay across transitions, so the state
//!   after `advance(a, b)` is bit-identical to `b - a` calls of `tick`.

use cwf_tracelog::{TraceEvent, RETIRE_BATCH};

use crate::trace::{TraceOp, TraceSource};

/// Core configuration (Table 1 defaults).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoreParams {
    /// Reorder-buffer entries.
    pub rob_size: usize,
    /// Fetch/dispatch/execute/retire width per cycle.
    pub width: u32,
    /// Completion latency of a non-memory instruction.
    pub pipe_latency: u64,
}

impl CoreParams {
    /// 64-entry ROB, 4-wide, 5-cycle pipeline (Table 1).
    #[must_use]
    pub fn paper_default() -> Self {
        CoreParams { rob_size: 64, width: 4, pipe_latency: 5 }
    }
}

/// Kind of memory operation handed to the issue sink.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemOpKind {
    /// Data load (blocks retirement until data returns).
    Load,
    /// Data store (retires through a write buffer).
    Store,
}

/// A memory operation presented to the hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemOp {
    /// Load or store.
    pub kind: MemOpKind,
    /// Byte address.
    pub addr: u64,
    /// Program counter of the static instruction.
    pub pc: u64,
    /// Issuing core.
    pub core: u8,
}

/// Hierarchy's answer when the core issues a [`MemOp`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IssueResult {
    /// The operation completes at a known cycle (cache hit, store absorb).
    Done {
        /// Completion cycle.
        complete_at: u64,
    },
    /// The operation missed to memory; [`Core::complete_load`] will be
    /// called with `load_id` when the data arrives.
    Pending {
        /// Wake-up handle.
        load_id: u64,
    },
    /// Structural stall (MSHR/queue full): the core retries next cycle.
    Blocked,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RobEntry {
    /// Completes at the given cycle.
    Done(u64),
    /// A load waiting on memory.
    Load { load_id: u64 },
}

/// Fixed-capacity ring buffer of in-flight ROB entries. Entries live in
/// a flat slab indexed modulo the capacity — no reallocation, no pointer
/// chasing, and `advance`'s cruise jump can rewrite the whole window in
/// one pass.
#[derive(Debug)]
struct RobRing {
    buf: Vec<RobEntry>,
    head: usize,
    len: usize,
}

impl RobRing {
    fn new(capacity: usize) -> Self {
        RobRing { buf: vec![RobEntry::Done(0); capacity], head: 0, len: 0 }
    }

    fn len(&self) -> usize {
        self.len
    }

    fn is_full(&self) -> bool {
        self.len == self.buf.len()
    }

    /// Physical index of logical slot `k` (0 = head).
    fn idx(&self, k: usize) -> usize {
        let i = self.head + k;
        if i >= self.buf.len() {
            i - self.buf.len()
        } else {
            i
        }
    }

    fn get(&self, k: usize) -> &RobEntry {
        &self.buf[self.idx(k)]
    }

    fn front(&self) -> Option<&RobEntry> {
        (self.len > 0).then(|| &self.buf[self.head])
    }

    fn pop_front(&mut self) -> Option<RobEntry> {
        if self.len == 0 {
            return None;
        }
        let e = self.buf[self.head];
        self.head = self.idx(1);
        self.len -= 1;
        Some(e)
    }

    fn push_back(&mut self, e: RobEntry) {
        debug_assert!(!self.is_full(), "ROB overflow");
        let i = self.idx(self.len);
        self.buf[i] = e;
        self.len += 1;
    }
}

/// What a core would do if ticked right now (event-kernel quiescence
/// classification; see [`Core::next_activity`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoreActivity {
    /// The core would interact this cycle (pull a trace op, retry a
    /// blocked op, or emit trace events) — it must be ticked now.
    Active,
    /// ROB full, head completes at the given future cycle; ticks until
    /// then are no-ops.
    WaitRetire(u64),
    /// ROB full, head is a load waiting on memory; each skipped cycle
    /// adds exactly one memory-stall cycle and nothing else.
    WaitLoad,
    /// Fetch-limited compute span: the pending instruction gap cannot be
    /// exhausted before the given cycle, so no trace pull — and hence no
    /// memory interaction — can happen strictly before it. Cycles up to
    /// the bound are replayed exactly by [`Core::advance`].
    Compute(u64),
}

/// Cycle accounting for one batched [`Core::advance`] span, broken down
/// by how each covered cycle was handled.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpanOutcome {
    /// Full-ROB head-load stall cycles batched in one O(1) jump (each
    /// charges one memory-stall cycle, exactly like the per-cycle tick).
    pub stall_cycles: u64,
    /// Full-ROB retire-wait cycles jumped to the head's completion time.
    pub wait_cycles: u64,
    /// Steady-state compute cycles covered by the O(1) cruise jump
    /// (retire `width` / fetch `width` per cycle, rematerialized).
    pub cruise_cycles: u64,
    /// Transitional cycles replayed one at a time (exact tick semantics).
    pub replayed_cycles: u64,
    /// First cycle at which the span needed an op from the trace or a
    /// blocked-op retry — the caller's activity bound was optimistic.
    /// `None` for every sound span; the verify oracle audits this.
    pub overrun_at: Option<u64>,
}

/// One out-of-order core.
#[derive(Debug)]
pub struct Core {
    id: u8,
    params: CoreParams,
    rob: RobRing,
    /// Non-memory instructions still to fetch from the current gap.
    pending_gap: u32,
    /// A memory op that was `Blocked` and must be retried.
    stalled: Option<TraceOp>,
    retired: u64,
    loads_issued: u64,
    stores_issued: u64,
    /// Cycles in which nothing could be retired while the ROB head was a
    /// pending load (memory-stall cycles).
    pub mem_stall_cycles: u64,
    /// Trace-event buffer (`None` ⇒ tracing disabled).
    tracelog: Option<Vec<TraceEvent>>,
    /// True while a ROB-stall span is open (edge detection for trace).
    stall_open: bool,
    /// Retirements since the last batched `Retire` trace event.
    retire_pending: u16,
    /// `(cycle, first_load_slot)` at which [`Core::advance`]'s cruise
    /// last left the ROB as a verified readiness staircase (completed
    /// slot `s` done by `cycle + s / width`; `usize::MAX` ⇒ no pending
    /// load in the window). Lets back-to-back cruise spans revalidate in
    /// O(1). [`Core::tick`] carries the mark forward when the cycle's
    /// retires and pushes provably preserve the staircase; a load
    /// completion or a single-cycle replay clears it.
    cruise_mark: Option<(u64, usize)>,
}

impl Core {
    /// Create core `id`.
    #[must_use]
    pub fn new(id: u8, params: CoreParams) -> Self {
        Core {
            id,
            params,
            rob: RobRing::new(params.rob_size),
            pending_gap: 0,
            stalled: None,
            retired: 0,
            loads_issued: 0,
            stores_issued: 0,
            mem_stall_cycles: 0,
            tracelog: None,
            stall_open: false,
            retire_pending: 0,
            cruise_mark: None,
        }
    }

    /// Start buffering trace events (ROB-stall edges and batched retire
    /// counts). Observation only — no timing changes. While tracing,
    /// [`Core::next_activity`] reports `Active` on every non-full-ROB
    /// cycle so the per-cycle edge events keep their exact timestamps.
    pub fn enable_trace(&mut self) {
        self.tracelog = Some(Vec::new());
    }

    /// Append buffered trace events to `out`. No-op while disabled.
    pub fn drain_trace(&mut self, out: &mut Vec<TraceEvent>) {
        if let Some(buf) = &mut self.tracelog {
            out.append(buf);
        }
    }

    /// Instructions retired so far.
    #[must_use]
    pub fn retired(&self) -> u64 {
        self.retired
    }

    /// Loads issued to the hierarchy.
    #[must_use]
    pub fn loads_issued(&self) -> u64 {
        self.loads_issued
    }

    /// Stores issued to the hierarchy.
    #[must_use]
    pub fn stores_issued(&self) -> u64 {
        self.stores_issued
    }

    /// Current ROB occupancy.
    #[must_use]
    pub fn rob_len(&self) -> usize {
        self.rob.len()
    }

    /// Classify what [`Core::tick`] would do at cycle `now` without
    /// running it, bounding how far the core can run without interacting
    /// with anything outside itself.
    ///
    /// With a full ROB the head check decides:
    ///
    /// - head `Done(at)` with `at > now`: nothing happens until `at` —
    ///   `WaitRetire(at)`;
    /// - head pending `Load`: the only effect per cycle is one
    ///   `mem_stall_cycles` increment — `WaitLoad`, which the kernel
    ///   batch-accounts over skipped cycles;
    /// - head `Done(at)` with `at <= now`: retire-limited execution —
    ///   classified by the gap bound below, exactly like the free-slot
    ///   case (retires free at most `width` slots per cycle, so the gap
    ///   drains no faster than `width` per cycle either way).
    ///
    /// While the fetch loop is draining a pending instruction gap it
    /// cannot pull a trace op: at most `width` gap instructions fetch
    /// per cycle, so the earliest possible pull is
    /// `now + ceil((gap + 1) / width) - 1` — `Compute(bound)`. Cycles
    /// strictly before the bound are pure retire/fetch work that
    /// [`Core::advance`] replays exactly. A core holding a blocked op,
    /// an exhausted gap, or an enabled trace buffer must be ticked now —
    /// `Active`.
    #[must_use]
    pub fn next_activity(&self, now: u64) -> CoreActivity {
        if self.rob.is_full() {
            match self.rob.front() {
                Some(RobEntry::Done(at)) if *at > now => return CoreActivity::WaitRetire(*at),
                Some(RobEntry::Load { .. }) => return CoreActivity::WaitLoad,
                // Head ready: retire-limited gap draining. Fall through to
                // the gap bound — the fetch loop frees at most `width`
                // slots per cycle, so the gap still cannot be exhausted
                // (and hence the trace cannot be pulled) any sooner; a
                // retire stall deep in the window only delays it further.
                _ => {}
            }
        }
        if self.tracelog.is_some() || self.stalled.is_some() || self.pending_gap == 0 {
            return CoreActivity::Active;
        }
        let w = u64::from(self.params.width.max(1));
        let bound = now + (u64::from(self.pending_gap) + 1).div_ceil(w) - 1;
        if bound <= now {
            CoreActivity::Active
        } else {
            CoreActivity::Compute(bound)
        }
    }

    /// The earliest cycle `>= now` at which the core must execute a real
    /// [`Core::tick`] ([`Core::next_activity`] folded to a single bound;
    /// `u64::MAX` = only a memory wake-up can make it interact again).
    #[must_use]
    pub fn next_wake(&self, now: u64) -> u64 {
        match self.next_activity(now) {
            CoreActivity::Active => now,
            CoreActivity::WaitRetire(at) => at,
            CoreActivity::WaitLoad => u64::MAX,
            CoreActivity::Compute(at) => at,
        }
    }

    /// Batch-account `cycles` skipped memory-stall cycles (the per-cycle
    /// kernel's head-`Load` increment, applied in one step). Only valid
    /// while [`Core::next_activity`] reports [`CoreActivity::WaitLoad`].
    pub fn add_stall_cycles(&mut self, cycles: u64) {
        self.mem_stall_cycles += cycles;
    }

    /// Deliver data for a pending load (match by `load_id`).
    pub fn complete_load(&mut self, load_id: u64, at: u64) {
        self.cruise_mark = None;
        for k in 0..self.rob.len() {
            let i = self.rob.idx(k);
            if matches!(self.rob.buf[i], RobEntry::Load { load_id: l } if l == load_id) {
                self.rob.buf[i] = RobEntry::Done(at);
                return;
            }
        }
        debug_assert!(false, "completion for unknown load {load_id}");
    }

    /// Advance one CPU cycle: retire up to `width` completed instructions
    /// from the ROB head, then fetch/issue up to `width` new ones.
    pub fn tick<T, F>(&mut self, now: u64, trace: &mut T, issue: &mut F)
    where
        T: TraceSource + ?Sized,
        F: FnMut(MemOp) -> IssueResult,
    {
        // Carry the cruise mark across this tick instead of discarding
        // it. Retiring up to `width` ready heads preserves the staircase
        // (each slot's bound loosens by one full step per cycle:
        // `base + (s + r) / w <= (now + 1) + s / w` for `r <= w`,
        // `base <= now`), so the mark survives as long as every entry
        // pushed this cycle lands on the staircase too — checked per
        // push below. This keeps back-to-back advance spans O(1) to
        // revalidate even though every span boundary runs a real tick.
        let mut mark = match self.cruise_mark.take() {
            Some((base, fl)) if base <= now => Some(fl),
            _ => None,
        };
        let mark_w = (self.params.width.max(1)) as usize;
        // Retire.
        let mut retired_this_cycle = 0;
        let mut stalled_on_load = false;
        while retired_this_cycle < self.params.width {
            match self.rob.front() {
                Some(RobEntry::Done(at)) if *at <= now => {
                    self.rob.pop_front();
                    self.retired += 1;
                    retired_this_cycle += 1;
                }
                Some(RobEntry::Load { .. }) if retired_this_cycle == 0 => {
                    self.mem_stall_cycles += 1;
                    stalled_on_load = true;
                    break;
                }
                _ => break,
            }
        }
        if let Some(fl) = &mut mark {
            // Retirement never pops a Load, so the first-load slot just
            // shifts down with the head.
            if *fl != usize::MAX {
                *fl -= retired_this_cycle as usize;
            }
        }
        if let Some(buf) = &mut self.tracelog {
            if stalled_on_load != self.stall_open {
                self.stall_open = stalled_on_load;
                buf.push(if stalled_on_load {
                    TraceEvent::RobStallBegin { core: self.id, at: now }
                } else {
                    TraceEvent::RobStallEnd { core: self.id, at: now }
                });
            }
            self.retire_pending += retired_this_cycle as u16;
            if self.retire_pending >= RETIRE_BATCH {
                buf.push(TraceEvent::Retire { core: self.id, at: now, count: self.retire_pending });
                self.retire_pending = 0;
            }
        }

        // Fetch/issue.
        let mut fetched = 0;
        while fetched < self.params.width && self.rob.len() < self.params.rob_size {
            if self.pending_gap > 0 {
                self.pending_gap -= 1;
                Self::mark_track(
                    &mut mark,
                    self.rob.len(),
                    Some(now + self.params.pipe_latency),
                    now,
                    mark_w,
                );
                self.rob.push_back(RobEntry::Done(now + self.params.pipe_latency));
                fetched += 1;
                continue;
            }
            let op = match self.stalled.take() {
                Some(op) => op,
                None => trace.next_op(),
            };
            match op {
                TraceOp::Gap(n) => {
                    self.pending_gap = n;
                    if n == 0 {
                        // Defensive: an empty gap is a no-op record.
                        continue;
                    }
                }
                TraceOp::Load { addr, pc } => {
                    match issue(MemOp { kind: MemOpKind::Load, addr, pc, core: self.id }) {
                        IssueResult::Done { complete_at } => {
                            self.loads_issued += 1;
                            Self::mark_track(
                                &mut mark,
                                self.rob.len(),
                                Some(complete_at),
                                now,
                                mark_w,
                            );
                            self.rob.push_back(RobEntry::Done(complete_at));
                            fetched += 1;
                        }
                        IssueResult::Pending { load_id } => {
                            self.loads_issued += 1;
                            Self::mark_track(&mut mark, self.rob.len(), None, now, mark_w);
                            self.rob.push_back(RobEntry::Load { load_id });
                            fetched += 1;
                        }
                        IssueResult::Blocked => {
                            self.stalled = Some(op);
                            break;
                        }
                    }
                }
                TraceOp::Store { addr, pc } => {
                    match issue(MemOp { kind: MemOpKind::Store, addr, pc, core: self.id }) {
                        IssueResult::Done { complete_at } => {
                            self.stores_issued += 1;
                            Self::mark_track(
                                &mut mark,
                                self.rob.len(),
                                Some(complete_at.max(now + 1)),
                                now,
                                mark_w,
                            );
                            self.rob.push_back(RobEntry::Done(complete_at.max(now + 1)));
                            fetched += 1;
                        }
                        IssueResult::Pending { .. } => {
                            // Stores retire via the write buffer; a pending
                            // result is treated as done next cycle.
                            self.stores_issued += 1;
                            Self::mark_track(&mut mark, self.rob.len(), Some(now + 1), now, mark_w);
                            self.rob.push_back(RobEntry::Done(now + 1));
                            fetched += 1;
                        }
                        IssueResult::Blocked => {
                            self.stalled = Some(op);
                            break;
                        }
                    }
                }
            }
        }
        self.cruise_mark = mark.map(|fl| (now + 1, fl));
    }

    /// Update the carried cruise mark for an entry about to be pushed at
    /// logical `slot`: a completion must land on the staircase
    /// (`at <= (now + 1) + slot / w`) or the mark dies; a pending load
    /// (`done_at` = `None`) never breaks the staircase but becomes the
    /// first-load slot if none was recorded yet.
    fn mark_track(mark: &mut Option<usize>, slot: usize, done_at: Option<u64>, now: u64, w: usize) {
        if let Some(fl) = mark {
            match done_at {
                Some(at) => {
                    if at > now + 1 + (slot / w) as u64 {
                        *mark = None;
                    }
                }
                None => {
                    if *fl == usize::MAX {
                        *fl = slot;
                    }
                }
            }
        }
    }

    /// Batch-replay cycles `from..to` (exclusive), during which
    /// [`Core::next_activity`] at `from` guarantees no interaction: the
    /// resulting state is bit-identical to `to - from` calls of
    /// [`Core::tick`] whose fetch loop never reaches the trace. Spans
    /// compose: `advance(a, b)` then `advance(b, c)` equals
    /// `advance(a, c)`.
    ///
    /// Three fast paths cover almost every cycle — the full-ROB
    /// head-load stall (one `mem_stall_cycles` charge per cycle, batched
    /// in O(1)), the full-ROB retire wait (jump to the head's completion
    /// time), and the *staircase cruise*: whenever every completed entry
    /// in the window forms a readiness staircase (slot `s` done by
    /// `cur + s / width`) and the pipeline latency is short enough that
    /// back-filled entries are ready when their retire turn comes, the
    /// core retires `width` and fetches `width` per cycle, so a whole
    /// run of cycles collapses into one window shift-and-rewrite. The
    /// cruise stops at the first pending load's retire turn, at the gap's
    /// exhaustion, or at `to`, whichever is first. Transitions between
    /// the regimes are replayed one cycle at a time with exact tick
    /// semantics.
    ///
    /// If a cycle strictly before `to` *would* need the trace (or a
    /// blocked-op retry), the caller's bound was optimistic: the fetch
    /// is suppressed, the cycle is recorded in
    /// [`SpanOutcome::overrun_at`], and the verify oracle turns it into
    /// a violation. Sound bounds never trip this.
    pub fn advance(&mut self, from: u64, to: u64) -> SpanOutcome {
        debug_assert!(self.tracelog.is_none(), "spans are disabled while tracing");
        let mut out = SpanOutcome::default();
        let w = self.params.width as usize;
        let lat = self.params.pipe_latency;
        let mut cur = from;
        while cur < to {
            if self.rob.is_full() {
                match self.rob.front() {
                    Some(RobEntry::Load { .. }) => {
                        // No fetch, no retire: one stall charge per cycle
                        // until the span ends (a completion cannot arrive
                        // inside a span).
                        let n = to - cur;
                        self.mem_stall_cycles += n;
                        out.stall_cycles += n;
                        cur = to;
                        continue;
                    }
                    Some(RobEntry::Done(at)) if *at > cur => {
                        let j = (*at).min(to);
                        out.wait_cycles += j - cur;
                        cur = j;
                        continue;
                    }
                    _ => {}
                }
            }
            // Staircase cruise: every completed slot `s` is done by
            // `cur + s / width`, so each cycle retires exactly `width`
            // ready heads and back-fills exactly `width` gap entries at
            // `+ lat` — the window length is preserved and the staircase
            // just shifts forward. The `lat` guard ensures a back-filled
            // entry is always done by the time it reaches the retire
            // window, keeping the staircase inductive; a pending load in
            // the window caps the jump so retirement never reaches it.
            // Works at any window length (full-ROB gap draining and the
            // non-full steady compute state are the same regime). The
            // shift is applied in O(shift): retiring `shift` heads from a
            // ring is a head advance, so only the entries fetched during
            // the last cruise cycles are actually written.
            let len = self.rob.len();
            if lat > 0
                && w > 0
                && len >= w
                && self.pending_gap as usize >= w
                && lat <= ((len - w) / w + 1) as u64
            {
                let scan = match self.cruise_mark {
                    Some((mark, fl)) if mark <= cur => Some(fl),
                    _ => self.staircase_scan(cur, w),
                };
                if let Some(first_load) = scan {
                    debug_assert_eq!(self.staircase_scan(cur, w), Some(first_load));
                    let k = (u64::from(self.pending_gap) / w as u64)
                        .min(to - cur)
                        .min((first_load / w) as u64);
                    if k > 0 {
                        let n = w as u64 * k;
                        self.retired += n;
                        self.pending_gap -= n as u32;
                        let shift = n.min(len as u64) as usize;
                        self.rob.head = self.rob.idx(shift);
                        for s in (len - shift)..len {
                            // Fetched during cruise cycle `cur + j`.
                            let j = k - 1 - ((len - 1 - s) / w) as u64;
                            let i = self.rob.idx(s);
                            self.rob.buf[i] = RobEntry::Done(cur + j + lat);
                        }
                        out.cruise_cycles += k;
                        cur += k;
                        self.cruise_mark = Some((
                            cur,
                            if first_load == usize::MAX { usize::MAX } else { first_load - shift },
                        ));
                        continue;
                    }
                }
            }
            if self.replay_cycle(cur) && out.overrun_at.is_none() {
                out.overrun_at = Some(cur);
            }
            out.replayed_cycles += 1;
            cur += 1;
        }
        out
    }

    /// Scan for the staircase-cruise state at cycle `now`: every
    /// completed slot `s` is done by `now + s / width`. Returns the
    /// logical slot of the first pending load (`usize::MAX` when none) —
    /// the cruise may only run while retirement stays strictly below
    /// that slot — or `None` when some completed slot is not ready in
    /// time.
    fn staircase_scan(&self, now: u64, w: usize) -> Option<usize> {
        let mut first_load = usize::MAX;
        for s in 0..self.rob.len() {
            match self.rob.get(s) {
                RobEntry::Done(at) => {
                    if *at > now + (s / w) as u64 {
                        return None;
                    }
                }
                RobEntry::Load { .. } => {
                    if first_load == usize::MAX {
                        first_load = s;
                    }
                }
            }
        }
        Some(first_load)
    }

    /// One exact tick with the trace unreachable: retire as [`Core::tick`]
    /// does, then fetch only gap instructions. Returns true when the real
    /// tick would have needed the trace (span overrun; fetch suppressed).
    fn replay_cycle(&mut self, now: u64) -> bool {
        self.cruise_mark = None;
        let mut retired_this_cycle = 0;
        while retired_this_cycle < self.params.width {
            match self.rob.front() {
                Some(RobEntry::Done(at)) if *at <= now => {
                    self.rob.pop_front();
                    self.retired += 1;
                    retired_this_cycle += 1;
                }
                Some(RobEntry::Load { .. }) if retired_this_cycle == 0 => {
                    self.mem_stall_cycles += 1;
                    break;
                }
                _ => break,
            }
        }
        let mut fetched = 0;
        while fetched < self.params.width && self.rob.len() < self.params.rob_size {
            if self.pending_gap == 0 {
                return true;
            }
            self.pending_gap -= 1;
            self.rob.push_back(RobEntry::Done(now + self.params.pipe_latency));
            fetched += 1;
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Script(Vec<TraceOp>, usize);
    impl Script {
        fn new(ops: Vec<TraceOp>) -> Self {
            Script(ops, 0)
        }
    }
    impl TraceSource for Script {
        fn next_op(&mut self) -> TraceOp {
            let op = self.0[self.1 % self.0.len()];
            self.1 += 1;
            op
        }
    }

    #[test]
    fn pure_compute_ipc_approaches_width() {
        let mut core = Core::new(0, CoreParams::paper_default());
        let mut t = Script::new(vec![TraceOp::Gap(100)]);
        let cycles = 1_000u64;
        for now in 0..cycles {
            core.tick(now, &mut t, &mut |_| unreachable!("no memory ops"));
        }
        let ipc = core.retired() as f64 / cycles as f64;
        assert!(ipc > 3.5, "ipc = {ipc}");
    }

    #[test]
    fn pending_load_blocks_retirement_until_completion() {
        let mut core = Core::new(0, CoreParams::paper_default());
        let mut t = Script::new(vec![TraceOp::Load { addr: 0, pc: 1 }, TraceOp::Gap(200)]);
        let mut first = true;
        let mut issue = |_op: MemOp| {
            if first {
                first = false;
                IssueResult::Pending { load_id: 42 }
            } else {
                IssueResult::Done { complete_at: 0 }
            }
        };
        for now in 0..50 {
            core.tick(now, &mut t, &mut issue);
        }
        // The load heads the ROB: nothing retires, and the ROB fills.
        assert_eq!(core.retired(), 0);
        assert_eq!(core.rob_len(), 64);
        assert!(core.mem_stall_cycles > 0);
        core.complete_load(42, 50);
        for now in 50..120 {
            core.tick(now, &mut t, &mut |_| IssueResult::Done { complete_at: 0 });
        }
        assert!(core.retired() > 64);
    }

    #[test]
    fn rob_bounds_outstanding_loads() {
        // Every op is a pending load: at most rob_size can be in flight.
        let mut core = Core::new(0, CoreParams::paper_default());
        let mut t = Script::new(vec![TraceOp::Load { addr: 0, pc: 1 }]);
        let mut next_id = 0u64;
        let mut issued = 0u64;
        let mut issue = |_op: MemOp| {
            next_id += 1;
            issued += 1;
            IssueResult::Pending { load_id: next_id }
        };
        for now in 0..100 {
            core.tick(now, &mut t, &mut issue);
        }
        assert_eq!(issued, 64, "MLP window equals ROB size");
    }

    #[test]
    fn blocked_op_is_retried_not_dropped() {
        let mut core = Core::new(0, CoreParams::paper_default());
        let mut t = Script::new(vec![TraceOp::Load { addr: 0x40, pc: 1 }, TraceOp::Gap(50)]);
        let mut attempts = 0;
        let mut issue = |op: MemOp| {
            attempts += 1;
            assert_eq!(op.addr, 0x40, "same op re-presented");
            if attempts < 3 {
                IssueResult::Blocked
            } else {
                IssueResult::Done { complete_at: 10 }
            }
        };
        for now in 0..3 {
            core.tick(now, &mut t, &mut issue);
        }
        assert_eq!(attempts, 3);
        assert_eq!(core.loads_issued(), 1);
    }

    #[test]
    fn stores_do_not_block_retirement() {
        let mut core = Core::new(0, CoreParams::paper_default());
        let mut t = Script::new(vec![TraceOp::Store { addr: 0, pc: 1 }, TraceOp::Gap(3)]);
        for now in 0..100 {
            core.tick(now, &mut t, &mut |_| IssueResult::Done { complete_at: 0 });
        }
        assert!(core.retired() > 50);
        assert!(core.stores_issued() > 10);
    }

    #[test]
    fn retire_width_is_respected() {
        let mut core = Core::new(0, CoreParams { rob_size: 64, width: 4, pipe_latency: 0 });
        let mut t = Script::new(vec![TraceOp::Gap(u32::MAX)]);
        core.tick(0, &mut t, &mut |_| unreachable!());
        assert_eq!(core.rob_len(), 4, "fetch width bounds per-cycle fetch");
        core.tick(1, &mut t, &mut |_| unreachable!());
        // 4 retired, 4 more fetched.
        assert_eq!(core.retired(), 4);
    }

    #[test]
    fn compute_bound_is_never_optimistic() {
        // Drive a gap-heavy core tick by tick; whenever next_activity
        // promises a compute span, the trace must not be pulled before
        // the bound.
        struct Recorder {
            pulls: Vec<u64>,
            gap: u32,
            now: u64,
        }
        impl TraceSource for Recorder {
            fn next_op(&mut self) -> TraceOp {
                let at = self.now;
                self.pulls.push(at);
                TraceOp::Gap(self.gap)
            }
        }
        for gap in [1u32, 3, 4, 5, 17, 64] {
            let mut core = Core::new(0, CoreParams::paper_default());
            let mut t = Recorder { pulls: Vec::new(), gap, now: 0 };
            let mut bound_floor = 0u64;
            for now in 0..200u64 {
                t.now = now;
                if let CoreActivity::Compute(b) = core.next_activity(now) {
                    assert!(b > now, "Compute bound must be in the future");
                    bound_floor = b;
                }
                let before = t.pulls.len();
                core.tick(now, &mut t, &mut |_| unreachable!("gaps only"));
                if t.pulls.len() > before {
                    assert!(now >= bound_floor, "gap {gap}: pull at {now} before {bound_floor}");
                }
            }
            assert!(!t.pulls.is_empty(), "gap {gap}: the trace was never reached");
        }
    }

    #[test]
    fn advance_matches_tick_over_a_pure_compute_span() {
        let params = CoreParams::paper_default();
        let mut a = Core::new(0, params);
        let mut b = Core::new(0, params);
        // Prime both with a long gap via one real tick.
        let mut t = Script::new(vec![TraceOp::Gap(1_000)]);
        a.tick(0, &mut t, &mut |_| unreachable!());
        let mut t = Script::new(vec![TraceOp::Gap(1_000)]);
        b.tick(0, &mut t, &mut |_| unreachable!());
        // a: exact per-cycle; b: one batched span.
        let mut t = Script::new(vec![TraceOp::Gap(1_000)]);
        for now in 1..200u64 {
            a.tick(now, &mut t, &mut |_| panic!("span must not issue"));
        }
        let out = b.advance(1, 200);
        assert_eq!(out.overrun_at, None);
        assert!(out.cruise_cycles > 150, "cruise covers the steady state: {out:?}");
        assert_eq!(a.retired(), b.retired());
        assert_eq!(a.rob_len(), b.rob_len());
        assert_eq!(a.mem_stall_cycles, b.mem_stall_cycles);
        assert_eq!(a.pending_gap, b.pending_gap);
    }

    #[test]
    fn advance_reports_an_optimistic_bound_as_overrun() {
        let mut core = Core::new(0, CoreParams::paper_default());
        let mut t = Script::new(vec![TraceOp::Gap(8)]);
        core.tick(0, &mut t, &mut |_| unreachable!());
        // Gap of 8 at width 4 exhausts during cycle 2; advancing to 10
        // overruns (a sound caller would stop at next_activity's bound).
        let bound = match core.next_activity(1) {
            CoreActivity::Compute(b) => b,
            other => panic!("expected compute span, got {other:?}"),
        };
        let out = core.advance(1, 10);
        let overrun = out.overrun_at.expect("bound exceeded");
        assert!(overrun >= bound, "overrun {overrun} cannot precede the bound {bound}");
    }
}

impl cwf_ckpt::Ckpt for RobEntry {
    fn save(&self, w: &mut cwf_ckpt::Writer) {
        match *self {
            RobEntry::Done(at) => {
                w.put_u8(0);
                w.put_u64(at);
            }
            RobEntry::Load { load_id } => {
                w.put_u8(1);
                w.put_u64(load_id);
            }
        }
    }
    fn load(r: &mut cwf_ckpt::Reader<'_>) -> cwf_ckpt::Result<Self> {
        Ok(match r.get_u8()? {
            0 => RobEntry::Done(r.get_u64()?),
            1 => RobEntry::Load { load_id: r.get_u64()? },
            v => return Err(cwf_ckpt::CkptError::new(format!("invalid RobEntry tag {v}"))),
        })
    }
}

cwf_ckpt::ckpt_struct!(RobRing { buf, head, len });

impl Core {
    /// Serialize the core's mutable state (ROB contents, in-flight op,
    /// retirement counters, span bookkeeping). `id` and `params` are
    /// rebuilt on restore; the trace log is re-armed by `enable_trace`
    /// and holds nothing once drained, so tracing doesn't block a
    /// checkpoint.
    ///
    /// # Errors
    ///
    /// Fails when the trace log holds undrained events.
    pub fn save_ckpt(&self, w: &mut cwf_ckpt::Writer) -> cwf_ckpt::Result<()> {
        let Core {
            id: _,
            params: _,
            rob,
            pending_gap,
            stalled,
            retired,
            loads_issued,
            stores_issued,
            mem_stall_cycles,
            tracelog,
            stall_open,
            retire_pending,
            cruise_mark,
        } = self;
        if tracelog.as_ref().is_some_and(|t| !t.is_empty()) {
            return Err(cwf_ckpt::CkptError::new(
                "cannot checkpoint a core with undrained trace events",
            ));
        }
        w.section(b"CORE");
        cwf_ckpt::Ckpt::save(rob, w);
        cwf_ckpt::Ckpt::save(pending_gap, w);
        cwf_ckpt::Ckpt::save(stalled, w);
        cwf_ckpt::Ckpt::save(retired, w);
        cwf_ckpt::Ckpt::save(loads_issued, w);
        cwf_ckpt::Ckpt::save(stores_issued, w);
        cwf_ckpt::Ckpt::save(mem_stall_cycles, w);
        cwf_ckpt::Ckpt::save(stall_open, w);
        cwf_ckpt::Ckpt::save(retire_pending, w);
        cwf_ckpt::Ckpt::save(cruise_mark, w);
        Ok(())
    }

    /// Restore state saved by [`Core::save_ckpt`] into a freshly
    /// constructed core with the same `id` and `params`.
    ///
    /// # Errors
    ///
    /// Fails on malformed input or a ROB capacity mismatch.
    pub fn load_ckpt(&mut self, r: &mut cwf_ckpt::Reader<'_>) -> cwf_ckpt::Result<()> {
        r.expect_section(b"CORE")?;
        let rob: RobRing = cwf_ckpt::Ckpt::load(r)?;
        if rob.buf.len() != self.rob.buf.len() {
            return Err(cwf_ckpt::CkptError::new("ROB capacity mismatch"));
        }
        self.rob = rob;
        self.pending_gap = cwf_ckpt::Ckpt::load(r)?;
        self.stalled = cwf_ckpt::Ckpt::load(r)?;
        self.retired = cwf_ckpt::Ckpt::load(r)?;
        self.loads_issued = cwf_ckpt::Ckpt::load(r)?;
        self.stores_issued = cwf_ckpt::Ckpt::load(r)?;
        self.mem_stall_cycles = cwf_ckpt::Ckpt::load(r)?;
        self.stall_open = cwf_ckpt::Ckpt::load(r)?;
        self.retire_pending = cwf_ckpt::Ckpt::load(r)?;
        self.cruise_mark = cwf_ckpt::Ckpt::load(r)?;
        Ok(())
    }
}
