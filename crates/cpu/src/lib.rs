#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! USIMM-style out-of-order core model.
//!
//! The paper simulates an 8-core, 3.2 GHz, 4-wide processor with a
//! 64-entry reorder buffer (Table 1). As in USIMM (the authors' own DRAM
//! simulation framework this paper's memory model derives from), the core
//! abstraction that matters for main-memory studies is the **ROB-limited
//! memory-level-parallelism window**: non-memory instructions retire at
//! pipeline speed, loads occupy a ROB slot until their data returns, and
//! the ROB's finite size bounds how many misses can overlap.
//!
//! The core consumes [`TraceOp`]s from a [`TraceSource`] and issues memory
//! operations through a caller-supplied sink (the cache hierarchy),
//! keeping this crate free of cache/memory dependencies.
//!
//! # Examples
//!
//! ```
//! use cpu_model::{Core, CoreParams, IssueResult, MemOpKind, TraceOp, TraceSource};
//!
//! struct TwoLoads(u32);
//! impl TraceSource for TwoLoads {
//!     fn next_op(&mut self) -> TraceOp {
//!         self.0 += 1;
//!         if self.0 % 2 == 0 { TraceOp::Load { addr: 64 * u64::from(self.0), pc: 1 } }
//!         else { TraceOp::Gap(3) }
//!     }
//! }
//!
//! let mut core = Core::new(0, CoreParams::paper_default());
//! let mut trace = TwoLoads(0);
//! for now in 0..100 {
//!     core.tick(now, &mut trace, &mut |_op| IssueResult::Done { complete_at: now + 1 });
//! }
//! assert!(core.retired() > 0);
//! ```

pub mod core_model;
pub mod trace;

pub use core_model::{Core, CoreActivity, CoreParams, IssueResult, MemOp, MemOpKind, SpanOutcome};
pub use trace::{TraceOp, TraceSource};
