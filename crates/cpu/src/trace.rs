//! Trace vocabulary consumed by the core model.

/// One record of an instruction trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceOp {
    /// `n` non-memory instructions before the next memory operation.
    Gap(u32),
    /// A load of the 8-byte word at `addr`, issued by the static
    /// instruction at `pc` (the prefetcher trains on `pc`).
    Load {
        /// Byte address (word-aligned by generators).
        addr: u64,
        /// Program counter of the load.
        pc: u64,
    },
    /// A store to the 8-byte word at `addr`.
    Store {
        /// Byte address.
        addr: u64,
        /// Program counter of the store.
        pc: u64,
    },
}

impl cwf_ckpt::Ckpt for TraceOp {
    fn save(&self, w: &mut cwf_ckpt::Writer) {
        match *self {
            TraceOp::Gap(n) => {
                w.put_u8(0);
                w.put_u32(n);
            }
            TraceOp::Load { addr, pc } => {
                w.put_u8(1);
                w.put_u64(addr);
                w.put_u64(pc);
            }
            TraceOp::Store { addr, pc } => {
                w.put_u8(2);
                w.put_u64(addr);
                w.put_u64(pc);
            }
        }
    }
    fn load(r: &mut cwf_ckpt::Reader<'_>) -> cwf_ckpt::Result<Self> {
        Ok(match r.get_u8()? {
            0 => TraceOp::Gap(r.get_u32()?),
            1 => TraceOp::Load { addr: r.get_u64()?, pc: r.get_u64()? },
            2 => TraceOp::Store { addr: r.get_u64()?, pc: r.get_u64()? },
            v => return Err(cwf_ckpt::CkptError::new(format!("invalid TraceOp tag {v}"))),
        })
    }
}

/// An infinite instruction stream.
///
/// Generators in the `workloads` crate implement this; the core keeps
/// pulling records for as long as the simulation runs.
pub trait TraceSource {
    /// Produce the next trace record.
    fn next_op(&mut self) -> TraceOp;

    /// Serialize the stream position so a checkpointed run can resume
    /// the exact op sequence. Sources without replayable state (e.g.
    /// file-backed streams) keep the default, which rejects the
    /// checkpoint.
    ///
    /// # Errors
    ///
    /// The default always fails with "unsupported".
    fn save_ckpt(&self, w: &mut cwf_ckpt::Writer) -> cwf_ckpt::Result<()> {
        let _ = w;
        Err(cwf_ckpt::CkptError::new("trace source does not support checkpointing"))
    }

    /// Restore the stream position saved by [`TraceSource::save_ckpt`].
    ///
    /// # Errors
    ///
    /// The default always fails with "unsupported".
    fn load_ckpt(&mut self, r: &mut cwf_ckpt::Reader<'_>) -> cwf_ckpt::Result<()> {
        let _ = r;
        Err(cwf_ckpt::CkptError::new("trace source does not support checkpointing"))
    }
}

impl<T: TraceSource + ?Sized> TraceSource for &mut T {
    fn next_op(&mut self) -> TraceOp {
        (**self).next_op()
    }
    fn save_ckpt(&self, w: &mut cwf_ckpt::Writer) -> cwf_ckpt::Result<()> {
        (**self).save_ckpt(w)
    }
    fn load_ckpt(&mut self, r: &mut cwf_ckpt::Reader<'_>) -> cwf_ckpt::Result<()> {
        (**self).load_ckpt(r)
    }
}

impl TraceSource for Box<dyn TraceSource> {
    fn next_op(&mut self) -> TraceOp {
        (**self).next_op()
    }
    fn save_ckpt(&self, w: &mut cwf_ckpt::Writer) -> cwf_ckpt::Result<()> {
        (**self).save_ckpt(w)
    }
    fn load_ckpt(&mut self, r: &mut cwf_ckpt::Reader<'_>) -> cwf_ckpt::Result<()> {
        (**self).load_ckpt(r)
    }
}

impl TraceSource for Box<dyn TraceSource + Send> {
    fn next_op(&mut self) -> TraceOp {
        (**self).next_op()
    }
    fn save_ckpt(&self, w: &mut cwf_ckpt::Writer) -> cwf_ckpt::Result<()> {
        (**self).save_ckpt(w)
    }
    fn load_ckpt(&mut self, r: &mut cwf_ckpt::Reader<'_>) -> cwf_ckpt::Result<()> {
        (**self).load_ckpt(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Fixed;
    impl TraceSource for Fixed {
        fn next_op(&mut self) -> TraceOp {
            TraceOp::Gap(1)
        }
    }

    #[test]
    fn trait_objects_and_references_work() {
        let mut f = Fixed;
        assert_eq!(f.next_op(), TraceOp::Gap(1));
        let mut b: Box<dyn TraceSource> = Box::new(Fixed);
        assert_eq!(b.next_op(), TraceOp::Gap(1));
    }
}
