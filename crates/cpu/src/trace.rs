//! Trace vocabulary consumed by the core model.

/// One record of an instruction trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceOp {
    /// `n` non-memory instructions before the next memory operation.
    Gap(u32),
    /// A load of the 8-byte word at `addr`, issued by the static
    /// instruction at `pc` (the prefetcher trains on `pc`).
    Load {
        /// Byte address (word-aligned by generators).
        addr: u64,
        /// Program counter of the load.
        pc: u64,
    },
    /// A store to the 8-byte word at `addr`.
    Store {
        /// Byte address.
        addr: u64,
        /// Program counter of the store.
        pc: u64,
    },
}

/// An infinite instruction stream.
///
/// Generators in the `workloads` crate implement this; the core keeps
/// pulling records for as long as the simulation runs.
pub trait TraceSource {
    /// Produce the next trace record.
    fn next_op(&mut self) -> TraceOp;
}

impl<T: TraceSource + ?Sized> TraceSource for &mut T {
    fn next_op(&mut self) -> TraceOp {
        (**self).next_op()
    }
}

impl TraceSource for Box<dyn TraceSource> {
    fn next_op(&mut self) -> TraceOp {
        (**self).next_op()
    }
}

impl TraceSource for Box<dyn TraceSource + Send> {
    fn next_op(&mut self) -> TraceOp {
        (**self).next_op()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Fixed;
    impl TraceSource for Fixed {
        fn next_op(&mut self) -> TraceOp {
            TraceOp::Gap(1)
        }
    }

    #[test]
    fn trait_objects_and_references_work() {
        let mut f = Fixed;
        assert_eq!(f.next_op(), TraceOp::Gap(1));
        let mut b: Box<dyn TraceSource> = Box::new(Fixed);
        assert_eq!(b.next_op(), TraceOp::Gap(1));
    }
}
