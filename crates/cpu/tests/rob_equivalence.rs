//! Property tests pinning the ring-buffer ROB and the batched span
//! engine against the pre-refactor `VecDeque` core.
//!
//! Three executions drive the *same* randomized trace script, issue
//! schedule and completion schedule:
//!
//! 1. a `VecDeque`-based oracle core — a verbatim copy of the per-cycle
//!    implementation the ring buffer replaced;
//! 2. the real [`Core`], ticked every cycle (ring vs `VecDeque`);
//! 3. the real [`Core`], driven lazily through `next_activity` bounds
//!    and [`Core::advance`] spans (batched vs per-cycle).
//!
//! All three must produce identical issue logs (cycle, op, result) and
//! identical architectural counters, and no sound span may overrun.

use std::collections::VecDeque;

use cpu_model::{Core, CoreParams, IssueResult, MemOp, MemOpKind, TraceOp, TraceSource};
use proptest::prelude::*;

/// Cyclic script source (same shape the workload generators present).
struct Script {
    ops: Vec<TraceOp>,
    pos: usize,
}

impl TraceSource for Script {
    fn next_op(&mut self) -> TraceOp {
        let op = self.ops[self.pos % self.ops.len()];
        self.pos += 1;
        op
    }
}

/// Deterministic issue schedule: the n-th issue call gets a result drawn
/// from a split-mix stream, so every driver sees the same hierarchy.
struct IssueSched {
    seed: u64,
    calls: u64,
    next_load_id: u64,
    /// (delivery_cycle, load_id) for outstanding pending loads.
    completions: Vec<(u64, u64)>,
    /// (cycle, kind, addr, result tag) — the cross-driver fingerprint.
    log: Vec<(u64, u8, u64, u8)>,
}

impl IssueSched {
    fn new(seed: u64) -> Self {
        IssueSched { seed, calls: 0, next_load_id: 0, completions: Vec::new(), log: Vec::new() }
    }

    fn issue(&mut self, op: MemOp, now: u64) -> IssueResult {
        let mut x = self.seed ^ self.calls.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        x ^= x >> 30;
        x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x ^= x >> 27;
        self.calls += 1;
        let kind = if op.kind == MemOpKind::Load { 0 } else { 1 };
        let (tag, res) = match x % 10 {
            0..=4 => (0, IssueResult::Done { complete_at: now + (x >> 8) % 30 }),
            5..=7 => {
                let load_id = self.next_load_id;
                self.next_load_id += 1;
                // Stores never deliver through `complete_load` (the real
                // hierarchy retires them as write-buffer hits), so only
                // loads get a scheduled completion.
                if op.kind == MemOpKind::Load {
                    self.completions.push((now + 40 + (x >> 16) % 200, load_id));
                }
                (1, IssueResult::Pending { load_id })
            }
            _ => (2, IssueResult::Blocked),
        };
        self.log.push((now, kind, op.addr, tag));
        res
    }

    /// Pending loads due exactly at `now`, in schedule order.
    fn due(&mut self, now: u64) -> Vec<u64> {
        let mut out = Vec::new();
        self.completions.retain(|&(at, id)| {
            if at == now {
                out.push(id);
                false
            } else {
                true
            }
        });
        out
    }
}

#[derive(Debug, Clone, Copy)]
enum OracleEntry {
    Done(u64),
    Load(u64),
}

/// Verbatim port of the pre-ring per-cycle core: `VecDeque` ROB, same
/// retire/fetch loops, kept as the behavioral oracle.
struct OracleCore {
    params: CoreParams,
    rob: VecDeque<OracleEntry>,
    pending_gap: u32,
    stalled: Option<TraceOp>,
    retired: u64,
    loads_issued: u64,
    stores_issued: u64,
    mem_stall_cycles: u64,
}

impl OracleCore {
    fn new(params: CoreParams) -> Self {
        OracleCore {
            params,
            rob: VecDeque::with_capacity(params.rob_size),
            pending_gap: 0,
            stalled: None,
            retired: 0,
            loads_issued: 0,
            stores_issued: 0,
            mem_stall_cycles: 0,
        }
    }

    fn complete_load(&mut self, load_id: u64, at: u64) {
        for e in &mut self.rob {
            if matches!(e, OracleEntry::Load(l) if *l == load_id) {
                *e = OracleEntry::Done(at);
                return;
            }
        }
    }

    fn tick<F>(&mut self, now: u64, trace: &mut Script, issue: &mut F)
    where
        F: FnMut(MemOp) -> IssueResult,
    {
        let mut retired_this_cycle = 0;
        while retired_this_cycle < self.params.width {
            match self.rob.front() {
                Some(OracleEntry::Done(at)) if *at <= now => {
                    self.rob.pop_front();
                    self.retired += 1;
                    retired_this_cycle += 1;
                }
                Some(OracleEntry::Load(_)) if retired_this_cycle == 0 => {
                    self.mem_stall_cycles += 1;
                    break;
                }
                _ => break,
            }
        }
        let mut fetched = 0;
        while fetched < self.params.width && self.rob.len() < self.params.rob_size {
            if self.pending_gap > 0 {
                self.pending_gap -= 1;
                self.rob.push_back(OracleEntry::Done(now + self.params.pipe_latency));
                fetched += 1;
                continue;
            }
            let op = match self.stalled.take() {
                Some(op) => op,
                None => trace.next_op(),
            };
            match op {
                TraceOp::Gap(n) => {
                    self.pending_gap = n;
                    if n == 0 {
                        continue;
                    }
                }
                TraceOp::Load { addr, pc } => {
                    match issue(MemOp { kind: MemOpKind::Load, addr, pc, core: 0 }) {
                        IssueResult::Done { complete_at } => {
                            self.loads_issued += 1;
                            self.rob.push_back(OracleEntry::Done(complete_at));
                            fetched += 1;
                        }
                        IssueResult::Pending { load_id } => {
                            self.loads_issued += 1;
                            self.rob.push_back(OracleEntry::Load(load_id));
                            fetched += 1;
                        }
                        IssueResult::Blocked => {
                            self.stalled = Some(op);
                            break;
                        }
                    }
                }
                TraceOp::Store { addr, pc } => {
                    match issue(MemOp { kind: MemOpKind::Store, addr, pc, core: 0 }) {
                        IssueResult::Done { complete_at } => {
                            self.stores_issued += 1;
                            self.rob.push_back(OracleEntry::Done(complete_at.max(now + 1)));
                            fetched += 1;
                        }
                        IssueResult::Pending { .. } => {
                            self.stores_issued += 1;
                            self.rob.push_back(OracleEntry::Done(now + 1));
                            fetched += 1;
                        }
                        IssueResult::Blocked => {
                            self.stalled = Some(op);
                            break;
                        }
                    }
                }
            }
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Counters {
    retired: u64,
    loads: u64,
    stores: u64,
    mem_stall: u64,
    rob_len: usize,
}

/// Drive the oracle core per cycle.
fn run_oracle(
    params: CoreParams,
    ops: &[TraceOp],
    seed: u64,
    cycles: u64,
) -> (Counters, Vec<(u64, u8, u64, u8)>) {
    let mut core = OracleCore::new(params);
    let mut script = Script { ops: ops.to_vec(), pos: 0 };
    let mut sched = IssueSched::new(seed);
    for now in 0..cycles {
        for id in sched.due(now) {
            core.complete_load(id, now);
        }
        let s = &mut sched;
        core.tick(now, &mut script, &mut |op| s.issue(op, now));
    }
    (
        Counters {
            retired: core.retired,
            loads: core.loads_issued,
            stores: core.stores_issued,
            mem_stall: core.mem_stall_cycles,
            rob_len: core.rob.len(),
        },
        sched.log,
    )
}

/// Drive the real core per cycle.
fn run_percycle(
    params: CoreParams,
    ops: &[TraceOp],
    seed: u64,
    cycles: u64,
) -> (Counters, Vec<(u64, u8, u64, u8)>) {
    let mut core = Core::new(0, params);
    let mut script = Script { ops: ops.to_vec(), pos: 0 };
    let mut sched = IssueSched::new(seed);
    for now in 0..cycles {
        for id in sched.due(now) {
            core.complete_load(id, now);
        }
        let s = &mut sched;
        core.tick(now, &mut script, &mut |op| s.issue(op, now));
    }
    (
        Counters {
            retired: core.retired(),
            loads: core.loads_issued(),
            stores: core.stores_issued(),
            mem_stall: core.mem_stall_cycles,
            rob_len: core.rob_len(),
        },
        sched.log,
    )
}

/// Drive the real core lazily: tick only at `next_wake` bounds and at
/// completion deliveries, batch everything between with `advance`.
fn run_lazy(
    params: CoreParams,
    ops: &[TraceOp],
    seed: u64,
    cycles: u64,
) -> (Counters, Vec<(u64, u8, u64, u8)>) {
    let mut core = Core::new(0, params);
    let mut script = Script { ops: ops.to_vec(), pos: 0 };
    let mut sched = IssueSched::new(seed);
    let mut sync = 0u64; // next unexecuted cycle of the core's state
    let mut wake = 0u64; // earliest cycle a real tick is required
    for now in 0..cycles {
        let due = sched.due(now);
        if !due.is_empty() {
            if sync < now {
                let out = core.advance(sync, now);
                assert_eq!(out.overrun_at, None, "sound span overran at delivery");
                sync = now;
            }
            for id in due {
                core.complete_load(id, now);
            }
            wake = now; // the per-cycle kernel ticks a woken core this cycle
        }
        if wake <= now {
            if sync < now {
                let out = core.advance(sync, now);
                assert_eq!(out.overrun_at, None, "sound span overran before a tick");
            }
            let s = &mut sched;
            core.tick(now, &mut script, &mut |op| s.issue(op, now));
            sync = now + 1;
            wake = core.next_wake(now + 1);
        }
    }
    if sync < cycles {
        let out = core.advance(sync, cycles);
        assert_eq!(out.overrun_at, None, "sound tail span overran");
    }
    (
        Counters {
            retired: core.retired(),
            loads: core.loads_issued(),
            stores: core.stores_issued(),
            mem_stall: core.mem_stall_cycles,
            rob_len: core.rob_len(),
        },
        sched.log,
    )
}

fn op(kind: u8, val: u32, addr: u64) -> TraceOp {
    match kind % 3 {
        0 => TraceOp::Gap(val),
        1 => TraceOp::Load { addr: addr << 3, pc: addr & 0xFF },
        _ => TraceOp::Store { addr: addr << 3, pc: addr & 0xFF },
    }
}

fn trace_op() -> impl Strategy<Value = TraceOp> {
    (0u8..3, 0u32..200, 0u64..4096).prop_map(|(k, v, a)| op(k, v, a))
}

proptest! {
    /// Ring-buffer ROB == VecDeque ROB under random retire/issue
    /// schedules, per cycle.
    #[test]
    fn ring_rob_matches_vecdeque_oracle(
        ops in prop::collection::vec(trace_op(), 1..24),
        seed in any::<u64>(),
        cycles in 100u64..1200,
    ) {
        let params = CoreParams::paper_default();
        let (oc, ol) = run_oracle(params, &ops, seed, cycles);
        let (rc, rl) = run_percycle(params, &ops, seed, cycles);
        prop_assert_eq!(ol, rl, "issue logs diverged");
        prop_assert_eq!(oc.retired, rc.retired);
        prop_assert_eq!(oc.loads, rc.loads);
        prop_assert_eq!(oc.stores, rc.stores);
        prop_assert_eq!(oc.mem_stall, rc.mem_stall);
        prop_assert_eq!(oc.rob_len, rc.rob_len);
    }

    /// Batched `advance` spans == per-cycle ticks under random
    /// retire/issue schedules, including completion deliveries into
    /// lagging cores.
    #[test]
    fn lazy_spans_match_percycle_execution(
        ops in prop::collection::vec(trace_op(), 1..24),
        seed in any::<u64>(),
        cycles in 100u64..1200,
    ) {
        let params = CoreParams::paper_default();
        let (pc, pl) = run_percycle(params, &ops, seed, cycles);
        let (lc, ll) = run_lazy(params, &ops, seed, cycles);
        prop_assert_eq!(pl, ll, "issue logs diverged");
        prop_assert_eq!(pc.retired, lc.retired);
        prop_assert_eq!(pc.loads, lc.loads);
        prop_assert_eq!(pc.stores, lc.stores);
        prop_assert_eq!(pc.mem_stall, lc.mem_stall);
        prop_assert_eq!(pc.rob_len, lc.rob_len);
    }

    /// Narrow cores and short pipes hit the cruise/transition boundaries
    /// differently; the equivalence must hold there too.
    #[test]
    fn lazy_spans_match_on_odd_geometries(
        ops in prop::collection::vec(trace_op(), 1..16),
        seed in any::<u64>(),
        rob_size in 4usize..40,
        width in 1u32..6,
        pipe_latency in 0u64..8,
    ) {
        let params = CoreParams { rob_size, width, pipe_latency };
        let (pc, pl) = run_percycle(params, &ops, seed, 600);
        let (lc, ll) = run_lazy(params, &ops, seed, 600);
        prop_assert_eq!(pl, ll, "issue logs diverged");
        prop_assert_eq!(pc.retired, lc.retired);
        prop_assert_eq!(pc.mem_stall, lc.mem_stall);
        prop_assert_eq!(pc.rob_len, lc.rob_len);
    }
}
