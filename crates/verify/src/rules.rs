//! Violation vocabulary of the cross-layer oracle.

use dram_timing::Rule;

/// Which oracle invariant a violation broke.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OracleRule {
    /// A JEDEC-style protocol rule, re-derived by the shadow-state
    /// [`dram_timing::ProtocolChecker`].
    Protocol(Rule),
    /// A rank's refresh arrived later than its tREFI deadline plus the
    /// ledger's scheduling slack (or never arrived at all).
    RefreshMissed,
    /// Two sub-channels sharing one address/command bus issued commands in
    /// the same device cycle (§4.2.4 allows exactly one).
    CmdSlotDoubleBooked,
    /// A second `LineFilled` was delivered for an already-filled line.
    DuplicateLineFill,
    /// A word of a line was delivered by two `WordsAvailable` events.
    DuplicateWordDelivery,
    /// An event referenced a token that was never submitted (or already
    /// retired in a previous run phase).
    UnknownToken,
    /// Per-word arrival order broke: an event was timestamped before its
    /// submit, or words trickled in after the line fill.
    NonMonotonicArrival,
    /// A line fill completed without all eight words having arrived.
    IncompleteFill,
    /// The inclusive-L2 directory disagreed with L1 residency.
    InclusionViolation,
    /// The event kernel delivered a memory event off its timestamp — a
    /// deadline fired strictly inside a skipped interval.
    SkipMissedDeadline,
    /// A batched core-front-end span needed the instruction trace (or a
    /// blocked-op retry) strictly before its announced activity bound —
    /// the bound was optimistic and the replay was cut short.
    SpanOverrun,
    /// A DRAM-cache tag probe disagreed with the shadow directory: a hit
    /// declared for a line the cache does not hold, or a miss for one it
    /// does (tag/data coherence).
    CacheTagMismatch,
    /// A DRAM-cache line was installed while already resident, or on top
    /// of a live way that was never evicted (exactly-once fill).
    CacheDoubleFill,
    /// A dirty DRAM-cache victim was evicted without its writeback
    /// reaching the slow store first (writeback-before-evict).
    CacheWritebackLost,
}

impl std::fmt::Display for OracleRule {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OracleRule::Protocol(r) => write!(f, "protocol: {r}"),
            OracleRule::RefreshMissed => f.write_str("refresh missed"),
            OracleRule::CmdSlotDoubleBooked => f.write_str("cmd slot double-booked"),
            OracleRule::DuplicateLineFill => f.write_str("duplicate line fill"),
            OracleRule::DuplicateWordDelivery => f.write_str("duplicate word delivery"),
            OracleRule::UnknownToken => f.write_str("event for unknown token"),
            OracleRule::NonMonotonicArrival => f.write_str("non-monotonic arrival"),
            OracleRule::IncompleteFill => f.write_str("incomplete line fill"),
            OracleRule::InclusionViolation => f.write_str("L2 inclusion violation"),
            OracleRule::SkipMissedDeadline => f.write_str("skip missed deadline"),
            OracleRule::SpanOverrun => f.write_str("core span overran its bound"),
            OracleRule::CacheTagMismatch => f.write_str("dram-cache tag/data mismatch"),
            OracleRule::CacheDoubleFill => f.write_str("dram-cache double fill"),
            OracleRule::CacheWritebackLost => f.write_str("dram-cache writeback lost"),
        }
    }
}

/// The protocol rules the oracle is linked against: every
/// [`dram_timing::Rule`] the shadow-state checker can generate must appear
/// here, or `cwfmem spec-lint`'s rule-linkage pass fails.
///
/// The list is maintained *by hand*, on purpose. [`OracleRule::Protocol`]
/// would happily wrap a brand-new `Rule` variant without any code change,
/// so a structural check could never notice that the verify layer was
/// written before the rule existed. Listing the vocabulary explicitly
/// turns "new rule added to the checker" into a visible diff here plus a
/// lint failure until both sides agree (see `linked_list_is_exhaustive`).
#[must_use]
pub fn linked_protocol_rules() -> &'static [Rule] {
    &[
        Rule::TRcd,
        Rule::TRc,
        Rule::TRp,
        Rule::TRrd,
        Rule::TRrdL,
        Rule::TFaw,
        Rule::TRfc,
        Rule::TRas,
        Rule::TRtp,
        Rule::TWr,
        Rule::TWtr,
        Rule::TCcd,
        Rule::TCcdL,
        Rule::TRtrs,
        Rule::DataBusOverlap,
        Rule::ActToOpenBank,
        Rule::ReadClosedRow,
        Rule::WriteClosedRow,
        Rule::PreToClosedBank,
        Rule::RefWithOpenBanks,
        Rule::RefbToOpenBank,
        Rule::TRcSingleCommand,
        Rule::TRcBeforeRefb,
        Rule::ActOnSingleCommandDevice,
        Rule::RankOutOfRange,
    ]
}

/// One detected invariant violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OracleViolation {
    /// Cycle of the offending observation (device cycles for hardware
    /// rules, CPU cycles for event/MSHR rules — the detail says which).
    pub at: u64,
    /// The invariant class.
    pub rule: OracleRule,
    /// Human-readable specifics (channel, token, lateness, …).
    pub detail: String,
}

impl std::fmt::Display for OracleViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "cycle {}: {} ({})", self.at, self.rule, self.detail)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The hand-maintained linkage list must track the checker's rule
    /// vocabulary exactly — in both directions.
    #[test]
    fn linked_list_is_exhaustive() {
        let linked = linked_protocol_rules();
        assert_eq!(linked.len(), Rule::ALL.len(), "linkage list out of date");
        for r in Rule::ALL {
            assert!(linked.contains(&r), "rule {r} missing from linked_protocol_rules()");
        }
    }
}

impl cwf_ckpt::Ckpt for OracleRule {
    fn save(&self, w: &mut cwf_ckpt::Writer) {
        match *self {
            OracleRule::Protocol(rule) => {
                w.put_u8(0);
                cwf_ckpt::Ckpt::save(&rule, w);
            }
            OracleRule::RefreshMissed => w.put_u8(1),
            OracleRule::CmdSlotDoubleBooked => w.put_u8(2),
            OracleRule::DuplicateLineFill => w.put_u8(3),
            OracleRule::DuplicateWordDelivery => w.put_u8(4),
            OracleRule::UnknownToken => w.put_u8(5),
            OracleRule::NonMonotonicArrival => w.put_u8(6),
            OracleRule::IncompleteFill => w.put_u8(7),
            OracleRule::InclusionViolation => w.put_u8(8),
            OracleRule::SkipMissedDeadline => w.put_u8(9),
            OracleRule::SpanOverrun => w.put_u8(10),
            OracleRule::CacheTagMismatch => w.put_u8(11),
            OracleRule::CacheDoubleFill => w.put_u8(12),
            OracleRule::CacheWritebackLost => w.put_u8(13),
        }
    }
    fn load(r: &mut cwf_ckpt::Reader<'_>) -> cwf_ckpt::Result<Self> {
        Ok(match r.get_u8()? {
            0 => OracleRule::Protocol(cwf_ckpt::Ckpt::load(r)?),
            1 => OracleRule::RefreshMissed,
            2 => OracleRule::CmdSlotDoubleBooked,
            3 => OracleRule::DuplicateLineFill,
            4 => OracleRule::DuplicateWordDelivery,
            5 => OracleRule::UnknownToken,
            6 => OracleRule::NonMonotonicArrival,
            7 => OracleRule::IncompleteFill,
            8 => OracleRule::InclusionViolation,
            9 => OracleRule::SkipMissedDeadline,
            10 => OracleRule::SpanOverrun,
            11 => OracleRule::CacheTagMismatch,
            12 => OracleRule::CacheDoubleFill,
            13 => OracleRule::CacheWritebackLost,
            v => return Err(cwf_ckpt::CkptError::new(format!("invalid OracleRule tag {v}"))),
        })
    }
}

cwf_ckpt::ckpt_struct!(OracleViolation { at, rule, detail });
