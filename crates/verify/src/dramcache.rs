//! Shadow checker for the DRAM-cache consistency contract.
//!
//! The `DramCacheMemory` backend audits every cache bookkeeping decision
//! as an [`mem_ctrl::CacheAuditOp`]. This checker replays those records
//! against an independent shadow tag directory and enforces the contract
//! of DESIGN.md §17:
//!
//! * **tag/data coherence** — a probe may declare a hit only for a line
//!   the shadow directory holds (and a miss only for one it does not);
//! * **exactly-once fill** — a line is installed at most once while
//!   resident, and never on top of a way whose previous occupant was not
//!   evicted first;
//! * **writeback-before-evict** — a dirty victim's data reaches the slow
//!   store (a `Writeback` record) before its `Evict` retires the tag.
//!
//! Like every oracle checker this is an observer over the audit stream:
//! it shares no state with the live cache model, so a bug in either side
//! surfaces as a disagreement.

use std::collections::{BTreeMap, BTreeSet};

use mem_ctrl::CacheAuditOp;

use crate::rules::{OracleRule, OracleViolation};

/// Replays [`CacheAuditOp`] records against a shadow tag directory.
#[derive(Debug, Default)]
pub struct DramCacheChecker {
    /// Shadow directory: `(set, way)` → resident line.
    ways: BTreeMap<(u32, u32), u64>,
    /// Resident `(set, line)` pairs (the probe-facing view).
    resident: BTreeSet<(u32, u64)>,
    /// Writebacks announced but not yet consumed by their eviction.
    pending_wb: BTreeSet<u64>,
    /// Cache records replayed.
    ops_checked: u64,
}

impl DramCacheChecker {
    /// A fresh checker with an empty (all-invalid) shadow directory.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Cache records replayed so far.
    #[must_use]
    pub fn ops_checked(&self) -> u64 {
        self.ops_checked
    }

    /// Replay one audit record; violations are appended to `out`.
    pub fn observe(&mut self, at: u64, op: &CacheAuditOp, out: &mut Vec<OracleViolation>) {
        self.ops_checked += 1;
        match *op {
            CacheAuditOp::Probe { line, set, hit, write } => {
                let resident = self.resident.contains(&(set, line));
                if hit && !resident {
                    out.push(OracleViolation {
                        at,
                        rule: OracleRule::CacheTagMismatch,
                        detail: format!(
                            "{} probe hit for line {line:#x} not resident in set {set}",
                            if write { "write" } else { "read" }
                        ),
                    });
                } else if !hit && resident {
                    out.push(OracleViolation {
                        at,
                        rule: OracleRule::CacheTagMismatch,
                        detail: format!(
                            "{} probe missed line {line:#x} resident in set {set}",
                            if write { "write" } else { "read" }
                        ),
                    });
                }
            }
            CacheAuditOp::Fill { line, set, way } => {
                if self.resident.contains(&(set, line)) {
                    out.push(OracleViolation {
                        at,
                        rule: OracleRule::CacheDoubleFill,
                        detail: format!(
                            "line {line:#x} filled while already resident in set {set}"
                        ),
                    });
                }
                if let Some(&old) = self.ways.get(&(set, way)) {
                    out.push(OracleViolation {
                        at,
                        rule: OracleRule::CacheDoubleFill,
                        detail: format!(
                            "fill of line {line:#x} into set {set} way {way} over live line \
                             {old:#x} (no eviction)"
                        ),
                    });
                    self.resident.remove(&(set, old));
                }
                self.ways.insert((set, way), line);
                self.resident.insert((set, line));
            }
            CacheAuditOp::Evict { line, set, way, dirty } => {
                if dirty && !self.pending_wb.remove(&line) {
                    out.push(OracleViolation {
                        at,
                        rule: OracleRule::CacheWritebackLost,
                        detail: format!(
                            "dirty line {line:#x} evicted from set {set} way {way} without a \
                             preceding writeback"
                        ),
                    });
                }
                match self.ways.remove(&(set, way)) {
                    Some(held) if held == line => {}
                    held => out.push(OracleViolation {
                        at,
                        rule: OracleRule::CacheTagMismatch,
                        detail: format!(
                            "evict of line {line:#x} from set {set} way {way}, but shadow \
                             directory holds {held:?}"
                        ),
                    }),
                }
                self.resident.remove(&(set, line));
            }
            CacheAuditOp::Writeback { line, set: _ } => {
                self.pending_wb.insert(line);
            }
        }
    }

    /// End of run: writebacks never consumed by an eviction are noise in
    /// the protocol (the backend announced a writeback for a line it then
    /// kept). Returns the leftover lines for the oracle to report.
    #[must_use]
    pub fn finalize(&mut self) -> Vec<u64> {
        std::mem::take(&mut self.pending_wb).into_iter().collect()
    }

    /// Serialize the shadow directory and counters.
    pub fn save_state(&self, w: &mut cwf_ckpt::Writer) {
        let DramCacheChecker { ways, resident, pending_wb, ops_checked } = self;
        cwf_ckpt::Ckpt::save(ways, w);
        cwf_ckpt::Ckpt::save(resident, w);
        cwf_ckpt::Ckpt::save(pending_wb, w);
        cwf_ckpt::Ckpt::save(ops_checked, w);
    }

    /// Restore state saved by [`DramCacheChecker::save_state`].
    ///
    /// # Errors
    ///
    /// Fails on malformed input.
    pub fn load_state(&mut self, r: &mut cwf_ckpt::Reader<'_>) -> cwf_ckpt::Result<()> {
        self.ways = cwf_ckpt::Ckpt::load(r)?;
        self.resident = cwf_ckpt::Ckpt::load(r)?;
        self.pending_wb = cwf_ckpt::Ckpt::load(r)?;
        self.ops_checked = cwf_ckpt::Ckpt::load(r)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn replay(ops: &[CacheAuditOp]) -> Vec<OracleViolation> {
        let mut c = DramCacheChecker::new();
        let mut out = Vec::new();
        for (i, op) in ops.iter().enumerate() {
            c.observe(i as u64, op, &mut out);
        }
        out
    }

    #[test]
    fn clean_fill_probe_evict_cycle_is_clean() {
        let out = replay(&[
            CacheAuditOp::Probe { line: 7, set: 7, hit: false, write: false },
            CacheAuditOp::Fill { line: 7, set: 7, way: 0 },
            CacheAuditOp::Probe { line: 7, set: 7, hit: true, write: false },
            CacheAuditOp::Probe { line: 7, set: 7, hit: true, write: true },
            CacheAuditOp::Writeback { line: 7, set: 7 },
            CacheAuditOp::Evict { line: 7, set: 7, way: 0, dirty: true },
            CacheAuditOp::Fill { line: 2055, set: 7, way: 0 },
        ]);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn hit_for_absent_line_is_tag_mismatch() {
        let out = replay(&[CacheAuditOp::Probe { line: 9, set: 9, hit: true, write: false }]);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].rule, OracleRule::CacheTagMismatch);
    }

    #[test]
    fn miss_for_resident_line_is_tag_mismatch() {
        let out = replay(&[
            CacheAuditOp::Fill { line: 9, set: 9, way: 1 },
            CacheAuditOp::Probe { line: 9, set: 9, hit: false, write: false },
        ]);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].rule, OracleRule::CacheTagMismatch);
    }

    #[test]
    fn refill_of_resident_line_is_double_fill() {
        let out = replay(&[
            CacheAuditOp::Fill { line: 9, set: 9, way: 0 },
            CacheAuditOp::Fill { line: 9, set: 9, way: 1 },
        ]);
        assert!(out.iter().any(|v| v.rule == OracleRule::CacheDoubleFill));
    }

    #[test]
    fn fill_over_live_way_is_double_fill() {
        let out = replay(&[
            CacheAuditOp::Fill { line: 9, set: 9, way: 0 },
            CacheAuditOp::Fill { line: 2057, set: 9, way: 0 },
        ]);
        assert!(out.iter().any(|v| v.rule == OracleRule::CacheDoubleFill));
    }

    #[test]
    fn dirty_evict_without_writeback_is_lost() {
        let out = replay(&[
            CacheAuditOp::Fill { line: 9, set: 9, way: 0 },
            CacheAuditOp::Evict { line: 9, set: 9, way: 0, dirty: true },
        ]);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].rule, OracleRule::CacheWritebackLost);
    }

    #[test]
    fn clean_evict_needs_no_writeback() {
        let out = replay(&[
            CacheAuditOp::Fill { line: 9, set: 9, way: 0 },
            CacheAuditOp::Evict { line: 9, set: 9, way: 0, dirty: false },
        ]);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn state_round_trips() {
        let mut c = DramCacheChecker::new();
        let mut out = Vec::new();
        c.observe(1, &CacheAuditOp::Fill { line: 9, set: 9, way: 0 }, &mut out);
        c.observe(2, &CacheAuditOp::Writeback { line: 3, set: 3 }, &mut out);
        let mut w = cwf_ckpt::Writer::new();
        c.save_state(&mut w);
        let bytes = w.into_vec();
        let mut back = DramCacheChecker::new();
        let mut r = cwf_ckpt::Reader::new(&bytes);
        back.load_state(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(back.ops_checked(), 2);
        // The restored directory still knows line 9 is resident.
        let mut out = Vec::new();
        back.observe(
            3,
            &CacheAuditOp::Probe { line: 9, set: 9, hit: true, write: false },
            &mut out,
        );
        assert!(out.is_empty());
    }
}
