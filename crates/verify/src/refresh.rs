//! Refresh-obligation ledger.
//!
//! The per-channel [`dram_timing::ProtocolChecker`] validates `tRFC` *after*
//! a refresh, but nothing in the seed checked that refreshes happen *on
//! schedule* — a controller that silently dropped its tREFI obligations
//! would pass every timing rule while simulating impossible hardware. The
//! ledger shadows each rank's deadline exactly the way the controller arms
//! it (first deadline at `tREFI + 7·rank`, re-armed `tREFI` after every
//! observed REF/REFB) and flags a refresh that arrives more than half a
//! tREFI late. Self-refresh pauses the obligation: the device refreshes
//! itself, and a fresh deadline starts at wake-up.

use dram_timing::{DeviceConfig, PowerState};

/// Per-rank shadow of one channel's refresh deadlines.
#[derive(Debug)]
pub struct RefreshLedger {
    t_refi: u64,
    /// Scheduling slack: a refresh may legitimately trail its deadline by
    /// a precharge + tRFC of an earlier refresh + wake latency; half a
    /// tREFI is far above that and far below a dropped interval.
    slack: u64,
    deadline: Vec<u64>,
    in_self_refresh: Vec<bool>,
}

impl RefreshLedger {
    /// Shadow `ranks` ranks of `cfg` devices.
    #[must_use]
    pub fn new(cfg: &DeviceConfig, ranks: u32) -> Self {
        let t_refi = u64::from(cfg.timings.t_refi);
        RefreshLedger {
            t_refi,
            slack: t_refi / 2,
            // Mirrors the controller's staggered initial deadlines.
            deadline: (0..ranks).map(|r| t_refi.max(1) + u64::from(r) * 7).collect(),
            in_self_refresh: vec![false; ranks as usize],
        }
    }

    /// Observe a REF or REFB on `rank` at device cycle `at`. Returns the
    /// lateness in cycles when the refresh over-postponed its deadline.
    pub fn observe_refresh(&mut self, rank: usize, at: u64) -> Option<u64> {
        if self.t_refi == 0 || rank >= self.deadline.len() {
            return None;
        }
        let deadline = self.deadline[rank];
        self.deadline[rank] = at.max(deadline) + self.t_refi;
        (at > deadline + self.slack).then(|| at - deadline)
    }

    /// Observe a rank power transition (self-refresh suspends the ledger;
    /// wake re-arms a full interval, matching the controller's silent
    /// re-arm while the device refreshes itself).
    pub fn observe_power(&mut self, rank: usize, at: u64, state: PowerState) {
        if self.t_refi == 0 || rank >= self.deadline.len() {
            return;
        }
        match state {
            PowerState::SelfRefresh => self.in_self_refresh[rank] = true,
            PowerState::Up => {
                if self.in_self_refresh[rank] {
                    self.in_self_refresh[rank] = false;
                    self.deadline[rank] = at + self.t_refi;
                }
            }
            PowerState::PowerDown => {} // obligations keep running
        }
    }

    /// End-of-run check at device cycle `end`: every rank not in
    /// self-refresh must not be overdue. Returns `(rank, lateness)` pairs.
    #[must_use]
    pub fn finalize(&self, end: u64) -> Vec<(usize, u64)> {
        if self.t_refi == 0 {
            return Vec::new();
        }
        self.deadline
            .iter()
            .enumerate()
            .filter(|&(r, &d)| !self.in_self_refresh[r] && end > d + self.slack)
            .map(|(r, &d)| (r, end - d))
            .collect()
    }
}

impl RefreshLedger {
    /// Serialize per-rank deadlines and self-refresh flags. `t_refi`
    /// and the slack are pure config, rebuilt on restore.
    pub fn save_state(&self, w: &mut cwf_ckpt::Writer) {
        let RefreshLedger { t_refi: _, slack: _, deadline, in_self_refresh } = self;
        cwf_ckpt::Ckpt::save(deadline, w);
        cwf_ckpt::Ckpt::save(in_self_refresh, w);
    }

    /// Restore state saved by [`RefreshLedger::save_state`].
    ///
    /// # Errors
    ///
    /// Fails on malformed input or a rank-count mismatch.
    pub fn load_state(&mut self, r: &mut cwf_ckpt::Reader<'_>) -> cwf_ckpt::Result<()> {
        let deadline: Vec<u64> = cwf_ckpt::Ckpt::load(r)?;
        if deadline.len() != self.deadline.len() {
            return Err(cwf_ckpt::CkptError::new("refresh-ledger rank count mismatch"));
        }
        self.deadline = deadline;
        self.in_self_refresh = cwf_ckpt::Ckpt::load(r)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dram_timing::DeviceConfig;

    #[test]
    fn on_time_refreshes_are_clean() {
        let cfg = DeviceConfig::ddr3_1600();
        let t_refi = u64::from(cfg.timings.t_refi);
        let mut l = RefreshLedger::new(&cfg, 1);
        let mut at = t_refi + 40; // a little scheduling delay is fine
        for _ in 0..10 {
            assert_eq!(l.observe_refresh(0, at), None);
            at += t_refi;
        }
        assert!(l.finalize(at).is_empty());
    }

    #[test]
    fn skipped_interval_is_flagged() {
        let cfg = DeviceConfig::ddr3_1600();
        let t_refi = u64::from(cfg.timings.t_refi);
        let mut l = RefreshLedger::new(&cfg, 1);
        assert_eq!(l.observe_refresh(0, t_refi), None);
        // Next refresh a full interval late (one obligation dropped).
        let late = l.observe_refresh(0, 3 * t_refi);
        assert!(late.is_some(), "a dropped interval must be flagged");
    }

    #[test]
    fn never_refreshing_fails_finalize() {
        let cfg = DeviceConfig::ddr3_1600();
        let t_refi = u64::from(cfg.timings.t_refi);
        let l = RefreshLedger::new(&cfg, 2);
        let overdue = l.finalize(4 * t_refi);
        assert_eq!(overdue.len(), 2);
    }

    #[test]
    fn self_refresh_pauses_obligations() {
        let cfg = DeviceConfig::lpddr2_800();
        let t_refi = u64::from(cfg.timings.t_refi);
        let mut l = RefreshLedger::new(&cfg, 1);
        assert_eq!(l.observe_refresh(0, t_refi), None);
        l.observe_power(0, t_refi + 100, PowerState::SelfRefresh);
        // Deep in what would have been several missed intervals...
        assert!(l.finalize(10 * t_refi).is_empty(), "self-refresh suspends the ledger");
        l.observe_power(0, 10 * t_refi, PowerState::Up);
        // ...the obligation restarts one interval after wake.
        assert_eq!(l.observe_refresh(0, 11 * t_refi), None);
        assert!(!l.finalize(13 * t_refi).is_empty());
    }
}
