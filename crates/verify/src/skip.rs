//! Event-kernel skip-soundness monitor.
//!
//! The event kernel (DESIGN.md §9) fast-forwards over intervals in which
//! `next_activity` promises nothing observable happens. The promise is
//! checkable: every memory event carries its effect timestamp, and in a
//! sound simulation the hierarchy drains it exactly at that cycle — in the
//! per-cycle kernel trivially, in the event kernel because a wake is
//! scheduled no later than any deadline. An event delivered *after* its
//! timestamp means a deadline fired strictly inside a skipped (or gated)
//! interval: the backend under-reported `next_activity`, and every
//! downstream latency is silently wrong. Delivery *before* the timestamp
//! would mean time ran backwards; both directions are flagged.

use crate::rules::{OracleRule, OracleViolation};

/// Checks event delivery cycles against event timestamps, and accounts
/// the skip intervals for the report.
#[derive(Debug, Default)]
pub struct SkipMonitor {
    skips: u64,
    cycles_skipped: u64,
    core_spans: u64,
    core_span_cycles: u64,
}

impl SkipMonitor {
    /// New monitor.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a kernel skip over `[from, to)` (reporting only — soundness
    /// is judged per delivered event).
    pub fn note_skip(&mut self, from: u64, to: u64) {
        self.skips += 1;
        self.cycles_skipped += to.saturating_sub(from);
    }

    /// Check one event delivery: `ev_at` is the event's own timestamp,
    /// `delivered_at` the CPU cycle the hierarchy drained it.
    pub fn observe_delivery(
        &mut self,
        token: u64,
        ev_at: u64,
        delivered_at: u64,
        out: &mut Vec<OracleViolation>,
    ) {
        if delivered_at != ev_at {
            let how = if delivered_at > ev_at { "late" } else { "early" };
            out.push(OracleViolation {
                at: ev_at,
                rule: OracleRule::SkipMissedDeadline,
                detail: format!(
                    "token {token}: event due {ev_at} delivered {how} at {delivered_at}"
                ),
            });
        }
    }

    /// Audit one batched core-front-end span over `[from, to)` executed by
    /// `Core::advance` on `core`. A sound span replays to its bound;
    /// `overrun_at` carries the first cycle the replay needed the trace —
    /// proof the announced bound was optimistic — and becomes a violation.
    pub fn observe_span(
        &mut self,
        core: u8,
        from: u64,
        to: u64,
        overrun_at: Option<u64>,
        out: &mut Vec<OracleViolation>,
    ) {
        self.core_spans += 1;
        self.core_span_cycles += to.saturating_sub(from);
        if let Some(at) = overrun_at {
            out.push(OracleViolation {
                at,
                rule: OracleRule::SpanOverrun,
                detail: format!(
                    "core {core}: span [{from}, {to}) needed the trace at {at} \
                     before its activity bound"
                ),
            });
        }
    }

    /// Number of skip intervals observed.
    #[must_use]
    pub fn skips(&self) -> u64 {
        self.skips
    }

    /// Total CPU cycles covered by skips.
    #[must_use]
    pub fn cycles_skipped(&self) -> u64 {
        self.cycles_skipped
    }

    /// Number of batched core spans audited.
    #[must_use]
    pub fn core_spans(&self) -> u64 {
        self.core_spans
    }

    /// Total CPU cycles covered by audited core spans.
    #[must_use]
    pub fn core_span_cycles(&self) -> u64 {
        self.core_span_cycles
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn on_time_delivery_is_clean() {
        let mut m = SkipMonitor::new();
        let mut out = Vec::new();
        m.observe_delivery(1, 100, 100, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn late_delivery_is_flagged() {
        let mut m = SkipMonitor::new();
        let mut out = Vec::new();
        m.observe_delivery(1, 100, 130, &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].rule, OracleRule::SkipMissedDeadline);
    }

    #[test]
    fn skip_accounting_sums() {
        let mut m = SkipMonitor::new();
        m.note_skip(10, 50);
        m.note_skip(60, 100);
        assert_eq!(m.skips(), 2);
        assert_eq!(m.cycles_skipped(), 80);
    }

    #[test]
    fn sound_span_is_clean_and_counted() {
        let mut m = SkipMonitor::new();
        let mut out = Vec::new();
        m.observe_span(3, 100, 250, None, &mut out);
        assert!(out.is_empty());
        assert_eq!(m.core_spans(), 1);
        assert_eq!(m.core_span_cycles(), 150);
    }

    #[test]
    fn overrun_span_is_flagged() {
        let mut m = SkipMonitor::new();
        let mut out = Vec::new();
        m.observe_span(1, 100, 250, Some(180), &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].rule, OracleRule::SpanOverrun);
        assert_eq!(out[0].at, 180);
    }
}

cwf_ckpt::ckpt_struct!(SkipMonitor { skips, cycles_skipped, core_spans, core_span_cycles });
