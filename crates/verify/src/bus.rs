//! Shared address/command bus occupancy checker.
//!
//! The §4.2.4 sub-ranked organization multiplexes one double-data-rate
//! address/command bus across four RLDRAM3 sub-channels: at most one
//! command may launch per device cycle across the whole group. The
//! aggregated controller enforces this with round-robin arbitration; this
//! checker re-derives the invariant from the raw per-channel command logs,
//! so an arbitration bug (two grants in one cycle) is caught even though
//! each sub-channel's *own* protocol state stays perfectly legal.

use std::collections::BTreeMap;

/// Detects two commands in one device cycle within a bus group.
#[derive(Debug, Default)]
pub struct CmdBusChecker {
    /// `channel index → bus group` (channels with `None` are unchecked).
    group_of: Vec<Option<u32>>,
    /// `(group, device cycle) → first channel seen in that slot`.
    seen: BTreeMap<(u32, u64), usize>,
}

impl CmdBusChecker {
    /// Build from the per-channel bus-group assignment.
    #[must_use]
    pub fn new(group_of: Vec<Option<u32>>) -> Self {
        CmdBusChecker { group_of, seen: BTreeMap::new() }
    }

    /// Observe a command on `channel` at device cycle `at`. Returns the
    /// sibling channel that already used the group's slot this cycle, if
    /// any.
    pub fn observe_cmd(&mut self, channel: usize, at: u64) -> Option<usize> {
        let group = (*self.group_of.get(channel)?)?;
        match self.seen.insert((group, at), channel) {
            Some(prev) if prev != channel => {
                // Restore the original owner so a triple-booking reports
                // against the same first command.
                self.seen.insert((group, at), prev);
                Some(prev)
            }
            _ => None,
        }
    }
}

impl CmdBusChecker {
    /// Serialize the occupied command slots. The bus-group map is pure
    /// config, rebuilt on restore.
    pub fn save_state(&self, w: &mut cwf_ckpt::Writer) {
        let CmdBusChecker { group_of: _, seen } = self;
        cwf_ckpt::Ckpt::save(seen, w);
    }

    /// Restore state saved by [`CmdBusChecker::save_state`].
    ///
    /// # Errors
    ///
    /// Fails on malformed input.
    pub fn load_state(&mut self, r: &mut cwf_ckpt::Reader<'_>) -> cwf_ckpt::Result<()> {
        self.seen = cwf_ckpt::Ckpt::load(r)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distinct_cycles_are_clean() {
        let mut c = CmdBusChecker::new(vec![Some(0), Some(0), None]);
        assert_eq!(c.observe_cmd(0, 5), None);
        assert_eq!(c.observe_cmd(1, 6), None);
        assert_eq!(c.observe_cmd(0, 7), None);
    }

    #[test]
    fn same_cycle_same_group_is_flagged() {
        let mut c = CmdBusChecker::new(vec![Some(0), Some(0)]);
        assert_eq!(c.observe_cmd(0, 5), None);
        assert_eq!(c.observe_cmd(1, 5), Some(0));
    }

    #[test]
    fn ungrouped_channels_never_conflict() {
        let mut c = CmdBusChecker::new(vec![None, None]);
        assert_eq!(c.observe_cmd(0, 5), None);
        assert_eq!(c.observe_cmd(1, 5), None);
    }

    #[test]
    fn different_groups_do_not_interact() {
        let mut c = CmdBusChecker::new(vec![Some(0), Some(1)]);
        assert_eq!(c.observe_cmd(0, 5), None);
        assert_eq!(c.observe_cmd(1, 5), None);
    }
}
