//! MSHR/fill coherence checker.
//!
//! Shadows the per-token event stream a memory backend feeds the cache
//! hierarchy and re-checks the MSHR contract the CWF design leans on:
//! every submitted read delivers each of its eight words exactly once
//! (split across fast/slow `WordsAvailable` events), exactly one
//! `LineFilled` retires the token, nothing arrives before its submit, and
//! no word is timestamped after the fill (processing order inside a drain
//! batch is arbitrary, so all checks compare event timestamps).

use std::collections::{BTreeMap, BTreeSet};

use mem_ctrl::{MemEvent, Token};

use crate::rules::{OracleRule, OracleViolation};

#[derive(Debug, Clone, Copy)]
struct TokenState {
    submit_at: u64,
    words: u8,
    fill_at: Option<u64>,
}

/// Per-token word-arrival and fill bookkeeping.
#[derive(Debug, Default)]
pub struct FillOracle {
    inflight: BTreeMap<u64, TokenState>,
    completed: BTreeSet<u64>,
}

impl FillOracle {
    /// New empty oracle.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a read submitted to memory at CPU cycle `at`.
    pub fn observe_submit(&mut self, token: Token, at: u64) {
        self.inflight.insert(token.0, TokenState { submit_at: at, words: 0, fill_at: None });
    }

    /// Check one delivered memory event (timestamps are the event's own;
    /// delivery-time soundness is the skip monitor's job).
    pub fn observe_event(&mut self, ev: &MemEvent, out: &mut Vec<OracleViolation>) {
        let tok = ev.token().0;
        let at = ev.at();
        let Some(state) = self.inflight.get_mut(&tok) else {
            let rule = if self.completed.contains(&tok) {
                match ev {
                    MemEvent::LineFilled { .. } => OracleRule::DuplicateLineFill,
                    MemEvent::WordsAvailable { .. } => OracleRule::DuplicateWordDelivery,
                }
            } else {
                OracleRule::UnknownToken
            };
            out.push(OracleViolation { at, rule, detail: format!("token {tok}") });
            return;
        };
        if at < state.submit_at {
            out.push(OracleViolation {
                at,
                rule: OracleRule::NonMonotonicArrival,
                detail: format!("token {tok}: event at {at} before submit at {}", state.submit_at),
            });
        }
        match *ev {
            MemEvent::WordsAvailable { words, .. } => {
                if words & state.words != 0 {
                    out.push(OracleViolation {
                        at,
                        rule: OracleRule::DuplicateWordDelivery,
                        detail: format!(
                            "token {tok}: words {:#04x} overlap {:#04x}",
                            words, state.words
                        ),
                    });
                }
                if let Some(fill_at) = state.fill_at {
                    // Delivery order within a drain batch is arbitrary, so
                    // judge by timestamps: only words stamped strictly
                    // after the fill are a real leak.
                    if at > fill_at {
                        out.push(OracleViolation {
                            at,
                            rule: OracleRule::NonMonotonicArrival,
                            detail: format!("token {tok}: words at {at} after fill at {fill_at}"),
                        });
                    }
                }
                state.words |= words;
            }
            MemEvent::LineFilled { .. } => {
                if state.fill_at.is_some() {
                    out.push(OracleViolation {
                        at,
                        rule: OracleRule::DuplicateLineFill,
                        detail: format!("token {tok}"),
                    });
                }
                state.fill_at = Some(at);
            }
        }
        if state.words == 0xFF && state.fill_at.is_some() {
            self.inflight.remove(&tok);
            self.completed.insert(tok);
        }
    }

    /// End-of-run check: a filled token must have received all its words.
    /// Unfilled tokens are fine — they were simply in flight at the end.
    pub fn finalize(&self, out: &mut Vec<OracleViolation>) {
        let mut stuck: Vec<(&u64, &TokenState)> =
            self.inflight.iter().filter(|(_, s)| s.fill_at.is_some()).collect();
        stuck.sort_by_key(|(t, _)| **t);
        for (tok, s) in stuck {
            out.push(OracleViolation {
                at: s.fill_at.unwrap_or(0),
                rule: OracleRule::IncompleteFill,
                detail: format!("token {tok}: filled with words {:#04x}", s.words),
            });
        }
    }

    /// Tokens fully retired (all words + fill).
    #[must_use]
    pub fn completed_count(&self) -> usize {
        self.completed.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wa(token: u64, at: u64, words: u8) -> MemEvent {
        MemEvent::WordsAvailable { token: Token(token), at, words, served_fast: false }
    }

    fn lf(token: u64, at: u64) -> MemEvent {
        MemEvent::LineFilled { token: Token(token), at }
    }

    #[test]
    fn split_delivery_retires_cleanly() {
        let mut f = FillOracle::new();
        let mut out = Vec::new();
        f.observe_submit(Token(1), 10);
        f.observe_event(&wa(1, 50, 0x01), &mut out); // fast word
        f.observe_event(&wa(1, 90, 0xFE), &mut out); // rest of line
        f.observe_event(&lf(1, 90), &mut out);
        f.finalize(&mut out);
        assert!(out.is_empty(), "{out:?}");
        assert_eq!(f.completed_count(), 1);
    }

    #[test]
    fn same_cycle_fill_before_words_is_tolerated() {
        // swap_remove drain order may deliver LineFilled before the
        // coincident WordsAvailable.
        let mut f = FillOracle::new();
        let mut out = Vec::new();
        f.observe_submit(Token(1), 0);
        f.observe_event(&wa(1, 50, 0x01), &mut out);
        f.observe_event(&lf(1, 90), &mut out);
        f.observe_event(&wa(1, 90, 0xFE), &mut out);
        f.finalize(&mut out);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn duplicate_word_is_flagged() {
        let mut f = FillOracle::new();
        let mut out = Vec::new();
        f.observe_submit(Token(1), 0);
        f.observe_event(&wa(1, 50, 0x03), &mut out);
        f.observe_event(&wa(1, 60, 0x02), &mut out);
        assert!(out.iter().any(|v| v.rule == OracleRule::DuplicateWordDelivery));
    }

    #[test]
    fn duplicate_fill_is_flagged() {
        let mut f = FillOracle::new();
        let mut out = Vec::new();
        f.observe_submit(Token(1), 0);
        f.observe_event(&wa(1, 50, 0xFF), &mut out);
        f.observe_event(&lf(1, 50), &mut out);
        f.observe_event(&lf(1, 70), &mut out);
        assert!(out.iter().any(|v| v.rule == OracleRule::DuplicateLineFill));
    }

    #[test]
    fn unknown_token_is_flagged() {
        let mut f = FillOracle::new();
        let mut out = Vec::new();
        f.observe_event(&lf(9, 70), &mut out);
        assert!(out.iter().any(|v| v.rule == OracleRule::UnknownToken));
    }

    #[test]
    fn incomplete_fill_caught_at_finalize() {
        let mut f = FillOracle::new();
        let mut out = Vec::new();
        f.observe_submit(Token(1), 0);
        f.observe_event(&wa(1, 50, 0x01), &mut out);
        f.observe_event(&lf(1, 90), &mut out);
        assert!(out.is_empty());
        f.finalize(&mut out);
        assert!(out.iter().any(|v| v.rule == OracleRule::IncompleteFill));
    }

    #[test]
    fn event_before_submit_is_flagged() {
        let mut f = FillOracle::new();
        let mut out = Vec::new();
        f.observe_submit(Token(1), 100);
        f.observe_event(&wa(1, 50, 0xFF), &mut out);
        assert!(out.iter().any(|v| v.rule == OracleRule::NonMonotonicArrival));
    }
}

cwf_ckpt::ckpt_struct!(TokenState { submit_at, words, fill_at });
cwf_ckpt::ckpt_struct!(FillOracle { inflight, completed });
