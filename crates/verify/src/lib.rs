//! Cross-layer simulation oracle.
//!
//! The seed's `ProtocolChecker` (crates/dram) audits one channel's JEDEC
//! timing in isolation. This crate grows it into a *cross-layer* oracle: a
//! set of pluggable invariant checkers that shadow a live simulation and
//! cross-check the layers against each other —
//!
//! * [`RefreshLedger`] — every rank meets its tREFI obligation (the
//!   timing checker alone cannot see a refresh that never happens);
//! * [`FillOracle`] — the MSHR/fill contract: each submitted read's eight
//!   words arrive exactly once, one `LineFilled` retires the token, and
//!   arrivals are monotonic;
//! * [`CmdBusChecker`] — the §4.2.4 sub-ranked RLDRAM3 group issues at
//!   most one command per device cycle on its shared addr/cmd bus;
//! * [`SkipMonitor`] — the event kernel's cycle-skipping never jumps a
//!   deadline (every event is drained exactly at its own timestamp);
//! * [`DramCacheChecker`] — the DRAM-cache backend's consistency
//!   contract: tag/data coherence, exactly-once fills, and
//!   writeback-before-evict for dirty victims (DESIGN.md §17).
//!
//! [`Oracle`] bundles them behind the audit vocabulary of
//! [`mem_ctrl::audit`]: a backend that implements
//! `MainMemory::enable_audit`/`drain_audit` feeds raw command/power
//! records in, the simulation loop feeds submits/events/skips in, and
//! [`Oracle::finalize`] plus [`Oracle::report`] produce a
//! [`VerifyReport`]. The oracle is an observer only — enabling it must
//! not change a single simulated cycle, which the clean-run tests pin by
//! comparing full metric structs with and without it.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bus;
pub mod dramcache;
pub mod fill;
pub mod refresh;
pub mod rules;
pub mod skip;

pub use bus::CmdBusChecker;
pub use dramcache::DramCacheChecker;
pub use fill::FillOracle;
pub use refresh::RefreshLedger;
pub use rules::{OracleRule, OracleViolation};
pub use skip::SkipMonitor;

use dram_timing::Command;
use mem_ctrl::audit::{AuditRecord, ChannelDesc};
use mem_ctrl::{MemEvent, Token};

/// Stored-violation cap: detail strings for a badly broken run would
/// otherwise grow without bound. The total count keeps counting.
const MAX_STORED_VIOLATIONS: usize = 1000;

/// End-of-run summary of everything the oracle checked.
#[derive(Debug, Clone)]
pub struct VerifyReport {
    /// DRAM commands re-validated by the shadow protocol checkers.
    pub commands_checked: u64,
    /// Memory events checked by the fill oracle and skip monitor.
    pub events_checked: u64,
    /// Reads that fully retired (all words delivered + line filled).
    pub fills_completed: u64,
    /// Kernel skip intervals observed.
    pub skips: u64,
    /// CPU cycles covered by kernel skips.
    pub cycles_skipped: u64,
    /// Batched core-front-end spans audited.
    pub core_spans: u64,
    /// CPU cycles covered by audited core spans.
    pub core_span_cycles: u64,
    /// Total violations detected (may exceed `violations.len()`).
    pub total_violations: u64,
    /// Up to [`MAX_STORED_VIOLATIONS`] detailed violations, in detection
    /// order.
    pub violations: Vec<OracleViolation>,
}

impl VerifyReport {
    /// True when not a single invariant fired.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.total_violations == 0
    }
}

/// The aggregate cross-layer oracle shadowing one simulated system.
#[derive(Debug)]
pub struct Oracle {
    channels: Vec<ChannelDesc>,
    protocol: Vec<dram_timing::ProtocolChecker>,
    /// How many of each checker's violations we already copied out.
    protocol_consumed: Vec<usize>,
    refresh: Vec<RefreshLedger>,
    bus: CmdBusChecker,
    fill: FillOracle,
    skip: SkipMonitor,
    dramcache: DramCacheChecker,
    violations: Vec<OracleViolation>,
    total_violations: u64,
    events_checked: u64,
}

impl Oracle {
    /// Build an oracle over the backend's audited channels (as returned by
    /// `MainMemory::audit_channels`). Channel configs are taken verbatim —
    /// callers hand in pristine presets so the shadow state is independent
    /// of any bug in the live device model.
    #[must_use]
    pub fn new(channels: Vec<ChannelDesc>) -> Self {
        let protocol = channels
            .iter()
            .map(|c| dram_timing::ProtocolChecker::new(c.cfg.clone(), c.ranks))
            .collect::<Vec<_>>();
        let refresh = channels.iter().map(|c| RefreshLedger::new(&c.cfg, c.ranks)).collect();
        let bus = CmdBusChecker::new(channels.iter().map(|c| c.bus_group).collect());
        Oracle {
            protocol_consumed: vec![0; protocol.len()],
            protocol,
            refresh,
            bus,
            fill: FillOracle::new(),
            skip: SkipMonitor::new(),
            dramcache: DramCacheChecker::new(),
            violations: Vec::new(),
            total_violations: 0,
            events_checked: 0,
            channels,
        }
    }

    /// Number of audited channels.
    #[must_use]
    pub fn channel_count(&self) -> usize {
        self.channels.len()
    }

    fn push(&mut self, v: OracleViolation) {
        self.total_violations += 1;
        if self.violations.len() < MAX_STORED_VIOLATIONS {
            self.violations.push(v);
        }
    }

    /// Feed a batch of audit records drained from the backend.
    pub fn observe_records(&mut self, records: &[AuditRecord]) {
        for rec in records {
            match *rec {
                AuditRecord::Cmd { channel, at_mem, ref cmd } => {
                    self.observe_cmd(channel, at_mem, cmd);
                }
                AuditRecord::Power { channel, at_mem, rank, state } => {
                    if let Some(ledger) = self.refresh.get_mut(channel) {
                        ledger.observe_power(rank as usize, at_mem, state);
                    }
                }
                AuditRecord::Cache { at, ref op } => {
                    let mut out = Vec::new();
                    self.dramcache.observe(at, op, &mut out);
                    for v in out {
                        self.push(v);
                    }
                }
            }
        }
    }

    fn observe_cmd(&mut self, channel: usize, at_mem: u64, cmd: &Command) {
        let Some(checker) = self.protocol.get_mut(channel) else { return };
        checker.observe(cmd, at_mem);
        // Copy out only the violations this command added.
        let fresh: Vec<OracleViolation> = checker.violations()[self.protocol_consumed[channel]..]
            .iter()
            .map(|v| OracleViolation {
                at: v.at,
                rule: OracleRule::Protocol(v.rule),
                detail: format!("{}: {:?}", self.channels[channel].label, v.cmd),
            })
            .collect();
        self.protocol_consumed[channel] = checker.violations().len();
        for v in fresh {
            self.push(v);
        }

        match *cmd {
            Command::Refresh { rank } | Command::RefreshBank { rank, .. } => {
                if let Some(late) = self.refresh[channel].observe_refresh(rank as usize, at_mem) {
                    let label = self.channels[channel].label.clone();
                    self.push(OracleViolation {
                        at: at_mem,
                        rule: OracleRule::RefreshMissed,
                        detail: format!(
                            "{label}: rank {rank} refreshed {late} cycles past deadline"
                        ),
                    });
                }
            }
            _ => {}
        }

        if let Some(other) = self.bus.observe_cmd(channel, at_mem) {
            let label = self.channels[channel].label.clone();
            let other_label = self.channels[other].label.clone();
            self.push(OracleViolation {
                at: at_mem,
                rule: OracleRule::CmdSlotDoubleBooked,
                detail: format!("{label} and {other_label} both issued in device cycle {at_mem}"),
            });
        }
    }

    /// Record a read submitted to memory at CPU cycle `at`.
    pub fn observe_submit(&mut self, token: Token, at: u64) {
        self.fill.observe_submit(token, at);
    }

    /// Check one memory event drained by the hierarchy at CPU cycle
    /// `delivered_at`.
    pub fn observe_event(&mut self, ev: &MemEvent, delivered_at: u64) {
        self.events_checked += 1;
        let mut out = Vec::new();
        self.fill.observe_event(ev, &mut out);
        self.skip.observe_delivery(ev.token().0, ev.at(), delivered_at, &mut out);
        for v in out {
            self.push(v);
        }
    }

    /// Record a kernel skip over CPU cycles `[from, to)`.
    pub fn note_skip(&mut self, from: u64, to: u64) {
        self.skip.note_skip(from, to);
    }

    /// Audit one batched core-front-end span over `[from, to)` on `core`;
    /// `overrun_at` (the first cycle the replay needed the trace) becomes
    /// a [`OracleRule::SpanOverrun`] violation.
    pub fn note_span(&mut self, core: u8, from: u64, to: u64, overrun_at: Option<u64>) {
        let mut out = Vec::new();
        self.skip.observe_span(core, from, to, overrun_at, &mut out);
        for v in out {
            self.push(v);
        }
    }

    /// Feed inclusion-audit findings from the cache hierarchy (one string
    /// per broken directory entry), stamped at CPU cycle `at`.
    pub fn note_inclusion_violations(&mut self, at: u64, findings: &[String]) {
        for f in findings {
            self.push(OracleViolation {
                at,
                rule: OracleRule::InclusionViolation,
                detail: f.clone(),
            });
        }
    }

    /// Close the books at CPU cycle `end_cpu`: overdue refresh deadlines
    /// and filled-but-incomplete lines become violations.
    pub fn finalize(&mut self, end_cpu: u64) {
        for ch in 0..self.channels.len() {
            let ratio = u64::from(self.channels[ch].cfg.cpu_cycles_per_mem_cycle).max(1);
            let end_dev = end_cpu / ratio;
            let label = self.channels[ch].label.clone();
            for (rank, late) in self.refresh[ch].finalize(end_dev) {
                self.push(OracleViolation {
                    at: end_dev,
                    rule: OracleRule::RefreshMissed,
                    detail: format!("{label}: rank {rank} overdue by {late} cycles at end of run"),
                });
            }
        }
        let mut out = Vec::new();
        self.fill.finalize(&mut out);
        for v in out {
            self.push(v);
        }
    }

    /// Snapshot the report (call after [`Oracle::finalize`]).
    #[must_use]
    pub fn report(&self) -> VerifyReport {
        VerifyReport {
            commands_checked: self.protocol.iter().map(|c| c.commands_checked()).sum(),
            events_checked: self.events_checked,
            fills_completed: self.fill.completed_count() as u64,
            skips: self.skip.skips(),
            cycles_skipped: self.skip.cycles_skipped(),
            core_spans: self.skip.core_spans(),
            core_span_cycles: self.skip.core_span_cycles(),
            total_violations: self.total_violations,
            violations: self.violations.clone(),
        }
    }
}

impl Oracle {
    /// Serialize the oracle's mutable state: every protocol checker's
    /// shadow timing state, refresh ledgers, command-bus slots, the
    /// fill oracle, skip monitor and recorded violations. The channel
    /// descriptions and derived rule tables are pure config, rebuilt on
    /// restore.
    pub fn save_state(&self, w: &mut cwf_ckpt::Writer) {
        let Oracle {
            channels: _,
            protocol,
            protocol_consumed,
            refresh,
            bus,
            fill,
            skip,
            dramcache,
            violations,
            total_violations,
            events_checked,
        } = self;
        w.section(b"ORCL");
        w.put_u64(protocol.len() as u64);
        for p in protocol {
            p.save_state(w);
        }
        cwf_ckpt::Ckpt::save(protocol_consumed, w);
        w.put_u64(refresh.len() as u64);
        for l in refresh {
            l.save_state(w);
        }
        bus.save_state(w);
        cwf_ckpt::Ckpt::save(fill, w);
        cwf_ckpt::Ckpt::save(skip, w);
        dramcache.save_state(w);
        cwf_ckpt::Ckpt::save(violations, w);
        cwf_ckpt::Ckpt::save(total_violations, w);
        cwf_ckpt::Ckpt::save(events_checked, w);
    }

    /// Restore state saved by [`Oracle::save_state`] into a freshly
    /// constructed oracle over the same channel descriptions.
    ///
    /// # Errors
    ///
    /// Fails on malformed input or a channel-count mismatch.
    pub fn load_state(&mut self, r: &mut cwf_ckpt::Reader<'_>) -> cwf_ckpt::Result<()> {
        r.expect_section(b"ORCL")?;
        let n = r.get_u64()?;
        if n != self.protocol.len() as u64 {
            return Err(cwf_ckpt::CkptError::new("protocol-checker count mismatch"));
        }
        for p in &mut self.protocol {
            p.load_state(r)?;
        }
        self.protocol_consumed = cwf_ckpt::Ckpt::load(r)?;
        let n_ref = r.get_u64()?;
        if n_ref != self.refresh.len() as u64 {
            return Err(cwf_ckpt::CkptError::new("refresh-ledger count mismatch"));
        }
        for l in &mut self.refresh {
            l.load_state(r)?;
        }
        self.bus.load_state(r)?;
        self.fill = cwf_ckpt::Ckpt::load(r)?;
        self.skip = cwf_ckpt::Ckpt::load(r)?;
        self.dramcache.load_state(r)?;
        self.violations = cwf_ckpt::Ckpt::load(r)?;
        self.total_violations = cwf_ckpt::Ckpt::load(r)?;
        self.events_checked = cwf_ckpt::Ckpt::load(r)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dram_timing::{DeviceConfig, PowerState};

    fn desc(label: &str, cfg: DeviceConfig, bus_group: Option<u32>) -> ChannelDesc {
        ChannelDesc { label: label.to_string(), cfg, ranks: 1, bus_group }
    }

    #[test]
    fn clean_command_stream_is_clean() {
        let cfg = DeviceConfig::ddr3_1600();
        let t = cfg.timings;
        let mut o = Oracle::new(vec![desc("ddr3-ch0", cfg, None)]);
        let base = 10;
        o.observe_records(&[
            AuditRecord::Cmd { channel: 0, at_mem: base, cmd: Command::activate(0, 0, 5) },
            AuditRecord::Cmd {
                channel: 0,
                at_mem: base + u64::from(t.t_rcd),
                cmd: Command::read(0, 0, 5, false),
            },
        ]);
        o.finalize(u64::from(t.t_refi)); // well before the first deadline
        let r = o.report();
        assert!(r.is_clean(), "{:?}", r.violations);
        assert_eq!(r.commands_checked, 2);
    }

    #[test]
    fn trcd_violation_surfaces_as_protocol_rule() {
        let cfg = DeviceConfig::ddr3_1600();
        let mut o = Oracle::new(vec![desc("ddr3-ch0", cfg, None)]);
        o.observe_records(&[
            AuditRecord::Cmd { channel: 0, at_mem: 10, cmd: Command::activate(0, 0, 5) },
            AuditRecord::Cmd { channel: 0, at_mem: 11, cmd: Command::read(0, 0, 5, false) },
        ]);
        let r = o.report();
        assert!(r
            .violations
            .iter()
            .any(|v| v.rule == OracleRule::Protocol(dram_timing::Rule::TRcd)));
    }

    #[test]
    fn power_records_reach_the_ledger() {
        let cfg = DeviceConfig::lpddr2_800();
        let t_refi = u64::from(cfg.timings.t_refi);
        let mut o = Oracle::new(vec![desc("lpddr2-ch0", cfg, None)]);
        o.observe_records(&[AuditRecord::Power {
            channel: 0,
            at_mem: 5,
            rank: 0,
            state: PowerState::SelfRefresh,
        }]);
        // Ten intervals with zero refreshes: fine, the rank self-refreshes.
        o.finalize(10 * t_refi * u64::from(o.channels[0].cfg.cpu_cycles_per_mem_cycle));
        assert!(o.report().is_clean());
    }

    #[test]
    fn violation_storage_is_capped_but_counted() {
        let cfg = DeviceConfig::ddr3_1600();
        let mut o = Oracle::new(vec![desc("ddr3-ch0", cfg, None)]);
        // Same-cycle duplicate fills on an unknown token, many times over.
        for i in 0..(MAX_STORED_VIOLATIONS as u64 + 50) {
            o.observe_event(&MemEvent::LineFilled { token: Token(99), at: i }, i);
        }
        let r = o.report();
        assert_eq!(r.violations.len(), MAX_STORED_VIOLATIONS);
        assert!(r.total_violations > MAX_STORED_VIOLATIONS as u64);
    }
}
