//! Seeded-fault proofs: each injected bug must be caught by exactly the
//! checker designed for it.
//!
//! A silent oracle is worthless — these tests plant one specific fault per
//! run via the test-only knobs in the device/controller layers and assert
//! that (1) the oracle fires and (2) *only* the intended invariant fires,
//! so a fault cannot hide behind noise from an unrelated checker.

use cwf_verify::{Oracle, OracleRule};
use dram_timing::{DeviceConfig, Rule};
use mem_ctrl::audit::{AuditRecord, ChannelDesc};
use mem_ctrl::{AggregatedController, Controller, CtrlParams, Loc, Token};

/// Convert one controller's drained command/power logs into audit records
/// for `channel`.
fn drain_records(ctrl: &mut Controller, channel: usize) -> Vec<AuditRecord> {
    let mut out = Vec::new();
    for (at_mem, cmd) in ctrl.take_command_log() {
        out.push(AuditRecord::Cmd { channel, at_mem, cmd });
    }
    for (at_mem, rank, state) in ctrl.take_power_log() {
        out.push(AuditRecord::Power { channel, at_mem, rank, state });
    }
    out
}

/// Fault (a): a device model whose tRCD is one cycle short. The live
/// controller schedules against the shaved value, so every ACT→READ pair
/// lands one cycle early — the shadow checker (built from the pristine
/// preset) must flag tRCD and nothing else.
#[test]
fn shaved_trcd_is_caught_by_the_protocol_checker() {
    let pristine = DeviceConfig::ddr3_1600();
    let mut ctrl = Controller::new(pristine.clone().with_shaved_trcd(), 2, 8, "ddr3-faulty");
    ctrl.enable_command_log();

    let mut token = 0u64;
    for now in 0..2000u64 {
        // A fresh row every time forces an ACT before each READ.
        if now % 100 == 0 && ctrl.read_space() {
            let loc = Loc { rank: (token % 2) as u8, bank: 0, row: token as u32, col: 0 };
            assert!(ctrl.enqueue_read(Token(token), loc, false, now));
            token += 1;
        }
        ctrl.tick_mem(now, true);
        ctrl.take_completions();
    }

    let mut oracle = Oracle::new(vec![ChannelDesc {
        label: "ddr3-faulty".to_string(),
        cfg: pristine.clone(),
        ranks: 2,
        bus_group: None,
    }]);
    oracle.observe_records(&drain_records(&mut ctrl, 0));
    oracle.finalize(2000 * u64::from(pristine.cpu_cycles_per_mem_cycle));

    let report = oracle.report();
    assert!(!report.is_clean(), "a shaved tRCD must be detected");
    assert!(
        report.violations.iter().all(|v| v.rule == OracleRule::Protocol(Rule::TRcd)),
        "only the tRCD rule should fire: {:?}",
        report.violations
    );
}

/// Fault (b): the controller silently drops one scheduled refresh (the
/// deadline is re-armed without a REF ever issuing). Every per-command
/// timing stays legal, so only the refresh ledger can see it.
#[test]
fn dropped_refresh_is_caught_by_the_ledger() {
    let cfg = DeviceConfig::ddr3_1600();
    let t_refi = u64::from(cfg.timings.t_refi);
    let mut ctrl = Controller::new(cfg.clone(), 1, 8, "ddr3");
    ctrl.enable_command_log();
    ctrl.inject_drop_refresh(1);

    let end_mem = 4 * t_refi;
    for now in 0..end_mem {
        ctrl.tick_mem(now, true);
    }

    let mut oracle = Oracle::new(vec![ChannelDesc {
        label: "ddr3".to_string(),
        cfg: cfg.clone(),
        ranks: 1,
        bus_group: None,
    }]);
    oracle.observe_records(&drain_records(&mut ctrl, 0));
    oracle.finalize(end_mem * u64::from(cfg.cpu_cycles_per_mem_cycle));

    let report = oracle.report();
    assert!(!report.is_clean(), "a dropped refresh must be detected");
    assert!(
        report.violations.iter().all(|v| v.rule == OracleRule::RefreshMissed),
        "only the refresh ledger should fire: {:?}",
        report.violations
    );
}

/// Fault (b2): replay of the pre-fix self-refresh branch of
/// `tick_refresh` — the deadline silently resets to `now + tREFI` on an
/// *awake* rank, so the interval passes with neither a REF on the wire
/// nor a self-refresh power transition the ledger would credit. Every
/// command that does issue is individually legal; only the refresh
/// ledger can see the array went a full interval without maintenance.
#[test]
fn phantom_self_refresh_credit_is_caught_by_the_ledger() {
    let cfg = DeviceConfig::ddr3_1600();
    let t_refi = u64::from(cfg.timings.t_refi);
    let mut ctrl = Controller::new(cfg.clone(), 1, 8, "ddr3");
    ctrl.enable_command_log();
    ctrl.inject_phantom_self_refresh(1);

    let end_mem = 4 * t_refi;
    for now in 0..end_mem {
        ctrl.tick_mem(now, true);
    }

    let mut oracle = Oracle::new(vec![ChannelDesc {
        label: "ddr3".to_string(),
        cfg: cfg.clone(),
        ranks: 1,
        bus_group: None,
    }]);
    oracle.observe_records(&drain_records(&mut ctrl, 0));
    oracle.finalize(end_mem * u64::from(cfg.cpu_cycles_per_mem_cycle));

    let report = oracle.report();
    assert!(!report.is_clean(), "a phantom self-refresh credit must be detected");
    assert!(
        report.violations.iter().all(|v| v.rule == OracleRule::RefreshMissed),
        "only the refresh ledger should fire: {:?}",
        report.violations
    );
}

/// Control for fault (b): the identical run without the fault knob is
/// clean, so the ledger's slack is not just below normal scheduling noise.
#[test]
fn undropped_refresh_stream_is_clean() {
    let cfg = DeviceConfig::ddr3_1600();
    let t_refi = u64::from(cfg.timings.t_refi);
    let mut ctrl = Controller::new(cfg.clone(), 1, 8, "ddr3");
    ctrl.enable_command_log();

    let end_mem = 4 * t_refi;
    for now in 0..end_mem {
        ctrl.tick_mem(now, true);
    }

    let mut oracle = Oracle::new(vec![ChannelDesc {
        label: "ddr3".to_string(),
        cfg: cfg.clone(),
        ranks: 1,
        bus_group: None,
    }]);
    oracle.observe_records(&drain_records(&mut ctrl, 0));
    oracle.finalize(end_mem * u64::from(cfg.cpu_cycles_per_mem_cycle));
    let report = oracle.report();
    assert!(report.is_clean(), "{:?}", report.violations);
}

/// Fault (c): the aggregated RLDRAM3 controller grants its single shared
/// command slot twice in one device cycle. Each sub-channel's own command
/// stream stays perfectly legal, so only the cross-channel bus checker can
/// catch it.
#[test]
fn double_booked_cmd_slot_is_caught_by_the_bus_checker() {
    let cfg = DeviceConfig::rldram3();
    let mut agg = AggregatedController::new(&cfg, 4, 1, 1, "rl", CtrlParams::default());
    agg.enable_command_log();
    agg.inject_double_book_slot();

    let mut token = 0u64;
    for now in 0..400u64 {
        // Keep all four sub-queues loaded so at least two sub-channels
        // want the slot in (almost) every cycle.
        for sub in 0..4 {
            if agg.read_space(sub) {
                let loc =
                    Loc { rank: 0, bank: (token % 16) as u8, row: (token % 512) as u32, col: 0 };
                assert!(agg.enqueue_read(sub, Token(token), loc, false, now));
                token += 1;
            }
        }
        agg.tick_mem(now);
        agg.take_completions();
    }

    let channels: Vec<ChannelDesc> = (0..4)
        .map(|i| ChannelDesc {
            label: format!("rl-sub{i}"),
            cfg: cfg.clone(),
            ranks: 1,
            bus_group: Some(0),
        })
        .collect();
    let mut oracle = Oracle::new(channels);
    for (i, log) in agg.take_command_logs().into_iter().enumerate() {
        let records: Vec<AuditRecord> = log
            .into_iter()
            .map(|(at_mem, cmd)| AuditRecord::Cmd { channel: i, at_mem, cmd })
            .collect();
        oracle.observe_records(&records);
    }
    oracle.finalize(400 * u64::from(cfg.cpu_cycles_per_mem_cycle));

    let report = oracle.report();
    assert!(!report.is_clean(), "a double-booked command slot must be detected");
    assert!(
        report.violations.iter().all(|v| v.rule == OracleRule::CmdSlotDoubleBooked),
        "only the shared-bus checker should fire: {:?}",
        report.violations
    );
}

/// Control for fault (c): the same workload under honest round-robin
/// arbitration is clean across every checker.
#[test]
fn honest_arbitration_is_clean() {
    let cfg = DeviceConfig::rldram3();
    let mut agg = AggregatedController::new(&cfg, 4, 1, 1, "rl", CtrlParams::default());
    agg.enable_command_log();

    let mut token = 0u64;
    for now in 0..400u64 {
        for sub in 0..4 {
            if agg.read_space(sub) {
                let loc =
                    Loc { rank: 0, bank: (token % 16) as u8, row: (token % 512) as u32, col: 0 };
                assert!(agg.enqueue_read(sub, Token(token), loc, false, now));
                token += 1;
            }
        }
        agg.tick_mem(now);
        agg.take_completions();
    }

    let channels: Vec<ChannelDesc> = (0..4)
        .map(|i| ChannelDesc {
            label: format!("rl-sub{i}"),
            cfg: cfg.clone(),
            ranks: 1,
            bus_group: Some(0),
        })
        .collect();
    let mut oracle = Oracle::new(channels);
    for (i, log) in agg.take_command_logs().into_iter().enumerate() {
        let records: Vec<AuditRecord> = log
            .into_iter()
            .map(|(at_mem, cmd)| AuditRecord::Cmd { channel: i, at_mem, cmd })
            .collect();
        oracle.observe_records(&records);
    }
    oracle.finalize(400 * u64::from(cfg.cpu_cycles_per_mem_cycle));
    let report = oracle.report();
    assert!(report.is_clean(), "{:?}", report.violations);
}
