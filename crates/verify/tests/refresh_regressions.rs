//! Refresh-cadence regression pins for the controller's deadline
//! re-arming and power-management wake-ahead.
//!
//! Two bugs motivated these tests:
//!
//! 1. **Cadence drift** — re-arming a refresh deadline from the *issue*
//!    cycle (`now + tREFI`) instead of the *stored* deadline
//!    (`deadline + tREFI`) lets every cycle of issue slip compound
//!    forever, so an idle rank performs fewer than N refreshes in
//!    N·tREFI.
//! 2. **Wake-ahead boundary** — a powered-down rank must be woken exactly
//!    `tXP` before its deadline (plus precharge lead when banks are
//!    open); an off-by-one in the lead makes every refresh land one
//!    cycle late, which a drifting re-arm then silently absorbs.
//!
//! Both are pinned against the verify ledger: the oracle must stay clean.

use cwf_verify::Oracle;
use dram_timing::{Command, DeviceConfig, PowerState};
use mem_ctrl::audit::{AuditRecord, ChannelDesc};
use mem_ctrl::Controller;

/// Convert one controller's drained command/power logs into audit records
/// for `channel`.
fn drain_records(ctrl: &mut Controller, channel: usize) -> Vec<AuditRecord> {
    let mut out = Vec::new();
    for (at_mem, cmd) in ctrl.take_command_log() {
        out.push(AuditRecord::Cmd { channel, at_mem, cmd });
    }
    for (at_mem, rank, state) in ctrl.take_power_log() {
        out.push(AuditRecord::Power { channel, at_mem, rank, state });
    }
    out
}

fn oracle_is_clean(cfg: &DeviceConfig, records: &[AuditRecord], end_mem: u64) -> bool {
    let mut oracle = Oracle::new(vec![ChannelDesc {
        label: "ch".to_string(),
        cfg: cfg.clone(),
        ranks: 1,
        bus_group: None,
    }]);
    oracle.observe_records(records);
    oracle.finalize(end_mem * u64::from(cfg.cpu_cycles_per_mem_cycle));
    oracle.report().is_clean()
}

/// Refresh-command issue times out of a drained record set.
fn refresh_times(records: &[AuditRecord]) -> Vec<u64> {
    records
        .iter()
        .filter_map(|r| match r {
            AuditRecord::Cmd { at_mem, cmd: Command::Refresh { .. }, .. } => Some(*at_mem),
            _ => None,
        })
        .collect()
}

/// N refreshes must land in N·tREFI, each exactly on its deadline: the
/// re-arm is `deadline + tREFI`, never `issue_cycle + tREFI`, so issue
/// slip (power-down exit, command-slot contention) cannot drift the
/// cadence. With the pre-fix drifting re-arm this test fails on the
/// per-refresh timestamps long before the count drops.
#[test]
fn idle_rank_performs_n_refreshes_in_n_trefi_without_drift() {
    let cfg = DeviceConfig::ddr3_1600();
    let t_refi = u64::from(cfg.timings.t_refi);
    let mut ctrl = Controller::new(cfg.clone(), 1, 8, "ddr3");
    ctrl.enable_command_log();

    const N: u64 = 10;
    let end_mem = (N + 1) * t_refi;
    for now in 0..end_mem {
        ctrl.tick_mem(now, true);
    }

    let records = drain_records(&mut ctrl, 0);
    let expect: Vec<u64> = (1..=N).map(|k| k * t_refi).collect();
    assert_eq!(refresh_times(&records), expect, "each refresh must issue exactly on its deadline");
    // Zero refresh debt at the end of the window.
    assert!(oracle_is_clean(&cfg, &records, end_mem), "ledger must report zero refresh debt");
}

/// Boundary pin for the derived wake-ahead `tXP + (open > 0 ? tRP +
/// open - 1 : 0)`: with no open banks, a powered-down rank must wake
/// exactly `tXP` cycles before its deadline — one cycle later and every
/// refresh misses its deadline by exactly the boundary cycle.
#[test]
fn powered_down_rank_wakes_exactly_txp_before_its_refresh_deadline() {
    let mut cfg = DeviceConfig::lpddr2_800();
    // Keep the rank in power-down: self-refresh escalation would suspend
    // the external cadence this test pins.
    cfg.self_refresh_idle_cycles = 0;
    let t_refi = u64::from(cfg.timings.t_refi);
    let t_xp = u64::from(cfg.timings.t_xp);
    assert!(t_xp > 0, "boundary is only meaningful with a real exit latency");

    let mut ctrl = Controller::new(cfg.clone(), 1, 8, "lp");
    ctrl.enable_command_log();
    const N: u64 = 4;
    let end_mem = (N + 1) * t_refi;
    for now in 0..end_mem {
        ctrl.tick_mem(now, true);
    }

    let records = drain_records(&mut ctrl, 0);
    let expect: Vec<u64> = (1..=N).map(|k| k * t_refi).collect();
    assert_eq!(
        refresh_times(&records),
        expect,
        "no refresh may miss its deadline by the boundary cycle"
    );
    assert!(oracle_is_clean(&cfg, &records, end_mem), "ledger must stay clean at the boundary");

    let power: Vec<(u64, u8, PowerState)> = records
        .iter()
        .filter_map(|r| match *r {
            AuditRecord::Power { at_mem, rank, state, .. } => Some((at_mem, rank, state)),
            _ => None,
        })
        .collect();
    assert!(
        power.iter().any(|&(at, _, st)| st == PowerState::PowerDown && at < t_refi - t_xp),
        "the rank must actually power down before the first deadline: {power:?}"
    );
    for &d in &expect {
        assert!(
            power.iter().any(|&(at, _, st)| st == PowerState::Up && at == d - t_xp),
            "rank must wake exactly tXP={t_xp} before the deadline at {d}: {power:?}"
        );
    }
}
