//! Golden pins for the result-cache config digest.
//!
//! The digest is the cache's identity function: if it drifts, every
//! persisted cache key and every cross-version comparison silently
//! breaks. These tests pin the exact value for the full legacy memory
//! matrix (2 benches x 9 organizations) and for every shipped device
//! spec, with all environment-sensitive knobs (`kernel`, `verify`,
//! `trace`) set explicitly so the pins hold in any environment.
//!
//! If one of these assertions fails, the `cwfmem.ckpt.v1` encoding of
//! [`RunConfig`] changed — that is a format break, not a test to
//! update casually (DESIGN.md §16).

use cwf_dse::config_digest;
use dram_timing::DeviceSpec;
use sim_harness::config::MemKind;
use sim_harness::{Kernel, RunConfig};

/// The paper methodology config with every env-defaulted knob pinned.
fn pinned_cfg(kind: MemKind) -> RunConfig {
    let mut cfg = RunConfig::paper(kind, 8_000);
    cfg.kernel = Kernel::Event;
    cfg.verify = false;
    cfg.trace = false;
    cfg
}

/// `(bench, kind-slug, digest)` for the 18-cell legacy matrix.
const LEGACY_GOLDEN: [(&str, &str, u64); 18] = [
    ("mcf", "ddr3", 0x64af34fa8269181b),
    ("mcf", "lpddr2", 0x2b4c98c5f2358e68),
    ("mcf", "rldram3", 0xf50f2ef7840c9c4d),
    ("mcf", "rd", 0x5dd7243210cd4901),
    ("mcf", "rl", 0x8db50df50e28f106),
    ("mcf", "dl", 0xdde59fe57d07cd6c),
    ("mcf", "rl-ad", 0xfa8158208b453937),
    ("mcf", "rl-or", 0x0ea2504616603582),
    ("mcf", "rl-rand", 0x00874f1d50b8cab3),
    ("leslie3d", "ddr3", 0x023505ae58b09c86),
    ("leslie3d", "lpddr2", 0x11a99adcfdd06374),
    ("leslie3d", "rldram3", 0x79f2790e9c5c47a7),
    ("leslie3d", "rd", 0x31c5d9ff8b1e4b5b),
    ("leslie3d", "rl", 0xf273f10250957339),
    ("leslie3d", "dl", 0xb8eda12719d04d69),
    ("leslie3d", "rl-ad", 0xb48ea2a4158d56a1),
    ("leslie3d", "rl-or", 0xca8674f69150714f),
    ("leslie3d", "rl-rand", 0xe868236d9395f389),
];

#[test]
fn legacy_matrix_digests_are_pinned() {
    let mut seen = std::collections::BTreeSet::new();
    for (bench, slug, expect) in LEGACY_GOLDEN {
        let kind = MemKind::parse(slug).unwrap_or_else(|| panic!("kind {slug}"));
        let got = config_digest(bench, &pinned_cfg(kind));
        assert_eq!(got, expect, "digest drift for {bench}/{slug}: got {got:#018x}");
        assert!(seen.insert(got), "digest collision at {bench}/{slug}");
    }
}

#[test]
fn digests_are_seed_invariant_and_knob_sensitive() {
    let base = pinned_cfg(MemKind::Rl);
    let mut reseeded = base;
    reseeded.seed = reseeded.seed.wrapping_add(0x1234_5678);
    assert_eq!(config_digest("mcf", &base), config_digest("mcf", &reseeded));
    for mutate in [
        (|c: &mut RunConfig| c.cores = 4) as fn(&mut RunConfig),
        |c| c.target_dram_reads += 1,
        |c| c.warmup_dram_reads += 1,
        |c| c.prefetch = !c.prefetch,
        |c| c.parity_error_rate += 1e-6,
        |c| c.functional_warm_ops += 1,
        |c| c.kernel = Kernel::Cycle,
        |c| c.verify = true,
        |c| c.max_cycles -= 1,
    ] {
        let mut changed = base;
        mutate(&mut changed);
        assert_ne!(
            config_digest("mcf", &base),
            config_digest("mcf", &changed),
            "a config knob did not reach the digest"
        );
    }
}

/// Every shipped device spec participates in the digest space without
/// collisions (the exact values are asserted stable against a rerun, the
/// legacy matrix above pins absolute values).
#[test]
fn embedded_spec_digests_are_stable_and_distinct() {
    let mut seen = std::collections::BTreeMap::new();
    for id in DeviceSpec::embedded_ids() {
        let kind = MemKind::parse(id).unwrap_or_else(|| panic!("spec id {id} must parse"));
        let d1 = config_digest("mcf", &pinned_cfg(kind));
        let d2 = config_digest("mcf", &pinned_cfg(kind));
        assert_eq!(d1, d2, "digest of spec {id} must be deterministic");
        if let Some(prev) = seen.insert(d1, id) {
            // Spec ids that normalize to the same MemKind (e.g. a CWF
            // pairing alias) may share a digest; distinct kinds may not.
            let k_prev = MemKind::parse(prev).unwrap();
            assert_eq!(k_prev, kind, "digest collision between {prev} and {id}");
        }
    }
    assert!(!seen.is_empty(), "no embedded specs found");
}

/// Generator for the golden table: `cargo test -p cwf-dse --test
/// digest_golden -- --ignored --nocapture` prints the rows to paste.
#[test]
#[ignore = "golden-table generator"]
fn print_golden_table() {
    for bench in ["mcf", "leslie3d"] {
        for slug in ["ddr3", "lpddr2", "rldram3", "rd", "rl", "dl", "rl-ad", "rl-or", "rl-rand"] {
            let kind = MemKind::parse(slug).unwrap();
            println!(
                "    (\"{bench}\", \"{slug}\", {:#018x}),",
                config_digest(bench, &pinned_cfg(kind))
            );
        }
    }
}
