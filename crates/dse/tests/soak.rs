//! Serve-mode soak: thousands of concurrent cell requests against one
//! server, verifying the exactly-once delivery contract end to end.
//!
//! Eight client threads submit sweeps over a deliberately duplicate-heavy
//! grid (a handful of unique `(config, seed)` keys shared by every
//! sweep), so the cache's claim/batch/hit protocol is exercised under
//! real contention. Every sweep must come back complete — no lost slots,
//! no duplicate deliveries, no failures — and duplicate keys must be
//! served from the cache, not recomputed.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use cwf_dse::http::client_request;
use cwf_dse::{Json, Server};

/// Submit one sweep and return its id.
fn submit(addr: std::net::SocketAddr, body: &str) -> (u64, u64) {
    let (status, text) = client_request(addr, "POST", "/sweep", Some(body)).expect("submit");
    assert_eq!(status, 200, "submit failed: {text}");
    let v = Json::parse(text.trim()).expect("submit response");
    (
        v.get("id").and_then(Json::as_u64).expect("id"),
        v.get("cells").and_then(Json::as_u64).expect("cells"),
    )
}

/// Poll a sweep until done; panics (failing the soak) after ~60 s.
fn wait_done(addr: std::net::SocketAddr, id: u64) -> Json {
    for _ in 0..6_000 {
        let (status, text) =
            client_request(addr, "GET", &format!("/sweep/{id}"), None).expect("status");
        assert_eq!(status, 200);
        let v = Json::parse(text.trim()).expect("status json");
        if v.get("state").and_then(Json::as_str) == Some("done") {
            return v;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    panic!("sweep {id} did not finish");
}

#[test]
fn soak_thousand_concurrent_cells_exactly_once() {
    // 2 benches x 4 kinds = 8 cells per sweep; every sweep uses one of 3
    // base seeds, so the whole soak has 24 unique cell keys. 8 client
    // threads x 16 sweeps x 8 cells = 1024 cell requests.
    const CLIENTS: u64 = 8;
    const SWEEPS_PER_CLIENT: u64 = 16;
    const CELLS_PER_SWEEP: u64 = 8;
    const UNIQUE_KEYS: u64 = 24;

    let server = Server::start("127.0.0.1:0", 4).expect("server");
    let addr = server.addr();
    let total_cells = Arc::new(AtomicU64::new(0));
    let dup_served = Arc::new(AtomicU64::new(0));

    std::thread::scope(|scope| {
        for client in 0..CLIENTS {
            let total_cells = Arc::clone(&total_cells);
            let dup_served = Arc::clone(&dup_served);
            scope.spawn(move || {
                for round in 0..SWEEPS_PER_CLIENT {
                    let seed = 100 + (client + round) % 3;
                    let body = format!(
                        "{{\"benches\": [\"mcf\", \"stream\"], \
                          \"kinds\": [\"rl\", \"ddr3\", \"rldram3\", \"lpddr2\"], \
                          \"reads\": 60, \"quick\": true, \"verify\": false, \
                          \"seed\": {seed}}}"
                    );
                    let (id, cells) = submit(addr, &body);
                    assert_eq!(cells, CELLS_PER_SWEEP);
                    let st = wait_done(addr, id);
                    let done = st.get("done").and_then(Json::as_u64).expect("done");
                    let failed = st.get("failed").and_then(Json::as_u64).expect("failed");
                    let dups = st.get("duplicate_deliveries").and_then(Json::as_u64).expect("dups");
                    // The contract: every slot filled exactly once, none
                    // failed, none delivered twice.
                    assert_eq!(done, CELLS_PER_SWEEP, "sweep {id} lost results");
                    assert_eq!(failed, 0, "sweep {id} had failures");
                    assert_eq!(dups, 0, "sweep {id} had duplicate deliveries");
                    total_cells.fetch_add(done, Ordering::Relaxed);
                    let hits = st.get("cache_hits").and_then(Json::as_u64).expect("hits");
                    let batched = st.get("batched").and_then(Json::as_u64).expect("batched");
                    dup_served.fetch_add(hits + batched, Ordering::Relaxed);
                }
            });
        }
    });

    let total = total_cells.load(Ordering::Relaxed);
    assert_eq!(total, CLIENTS * SWEEPS_PER_CLIENT * CELLS_PER_SWEEP);
    assert!(total >= 1_000, "soak must exercise >= 1000 cell requests, got {total}");

    // Server-side accounting: every cell request was either a unique
    // computation or served from the cache; nothing fell through.
    let (status, text) = client_request(addr, "GET", "/stats", None).expect("stats");
    assert_eq!(status, 200);
    let stats = Json::parse(text.trim()).expect("stats json");
    let cache = stats.get("cache").expect("cache stats");
    let misses = cache.get("misses").and_then(Json::as_u64).expect("misses");
    let hits = cache.get("hits").and_then(Json::as_u64).expect("hits");
    let batched = cache.get("batched").and_then(Json::as_u64).expect("batched");
    assert_eq!(misses, UNIQUE_KEYS, "every unique key computed exactly once");
    assert_eq!(misses + hits + batched, total, "every request accounted for");
    assert!(hits + batched >= total - UNIQUE_KEYS, "duplicates must be cache-served");
    assert_eq!(hits + batched, dup_served.load(Ordering::Relaxed));
    let pool = stats.get("pool").expect("pool stats");
    assert_eq!(pool.get("panicked").and_then(Json::as_u64), Some(0));

    // Identical configurations produced bit-identical documents: compare
    // the raw cell docs of two same-seed sweeps submitted by different
    // clients (ids 1.. are dense; find two with the same first-cell doc
    // by just re-submitting the same body twice — both are pure hits).
    let body = "{\"benches\": [\"mcf\", \"stream\"], \
                \"kinds\": [\"rl\", \"ddr3\", \"rldram3\", \"lpddr2\"], \
                \"reads\": 60, \"quick\": true, \"verify\": false, \"seed\": 100}";
    let (id_a, _) = submit(addr, body);
    let (id_b, _) = submit(addr, body);
    wait_done(addr, id_a);
    wait_done(addr, id_b);
    for cell in 0..CELLS_PER_SWEEP {
        let (_, doc_a) =
            client_request(addr, "GET", &format!("/sweep/{id_a}/cell/{cell}"), None).unwrap();
        let (_, doc_b) =
            client_request(addr, "GET", &format!("/sweep/{id_b}/cell/{cell}"), None).unwrap();
        assert_eq!(doc_a, doc_b, "cached rerun must be bit-identical");
        assert!(doc_a.contains("cwfmem.run.v1"));
    }

    server.stop();
}

/// Serve-throughput probe for EXPERIMENTS.md (`--ignored --nocapture`):
/// prints cells/sec at several worker counts plus the cache hit rate of
/// a duplicate-heavy follow-up. Wall-clock timing is measurement, not
/// simulation, and lives in a test for exactly that reason.
#[test]
#[ignore = "measurement probe; run manually for EXPERIMENTS.md numbers"]
fn throughput_probe() {
    // 4 benches x 6 kinds x 4 seeds = 96 unique cells per round.
    let body = |seed: u64| {
        format!(
            "{{\"benches\": [\"mcf\", \"stream\", \"libquantum\", \"leslie3d\"], \
              \"kinds\": [\"rl\", \"ddr3\", \"rldram3\", \"lpddr2\", \"rd\", \"dl\"], \
              \"reads\": 4000, \"quick\": true, \"verify\": false, \"seed\": {seed}}}"
        )
    };
    for workers in [1usize, 2, 4, 8] {
        let server = Server::start("127.0.0.1:0", workers).expect("server");
        let addr = server.addr();
        let t0 = std::time::Instant::now();
        let ids: Vec<(u64, u64)> = (0..4).map(|s| submit(addr, &body(s))).collect();
        let cells: u64 = ids.iter().map(|(_, c)| c).sum();
        for (id, _) in &ids {
            wait_done(addr, *id);
        }
        let cold = t0.elapsed().as_secs_f64();
        // Duplicate-heavy follow-up: the same grids again, all cached.
        let t1 = std::time::Instant::now();
        let ids: Vec<(u64, u64)> = (0..4).map(|s| submit(addr, &body(s))).collect();
        for (id, _) in &ids {
            wait_done(addr, *id);
        }
        let warm = t1.elapsed().as_secs_f64();
        let (_, text) = client_request(addr, "GET", "/stats", None).expect("stats");
        let stats = Json::parse(text.trim()).expect("stats json");
        let cache = stats.get("cache").expect("cache");
        let hits = cache.get("hits").and_then(Json::as_u64).unwrap_or(0);
        let batched = cache.get("batched").and_then(Json::as_u64).unwrap_or(0);
        let misses = cache.get("misses").and_then(Json::as_u64).unwrap_or(0);
        println!(
            "workers={workers}: cold {cells} cells in {cold:.2}s ({:.1} cells/s), \
             warm rerun {warm:.3}s ({:.0} cells/s), \
             cache: {misses} misses / {hits} hits / {batched} batched \
             (hit rate {:.1}%)",
            f64::from(u32::try_from(cells).unwrap()) / cold,
            f64::from(u32::try_from(cells).unwrap()) / warm,
            100.0 * (hits + batched) as f64 / (hits + batched + misses) as f64
        );
        server.stop();
    }
}
