//! Result cache keyed by `(config-digest, seed)`.
//!
//! The cache both memoizes finished cells and *batches* duplicates of a
//! cell that is still computing: the first submission of a key claims it
//! and runs, later submissions subscribe to the in-flight entry and are
//! delivered the result when it lands. Simulations are deterministic
//! (DESIGN.md §8), so a cached *success* is bit-identical to a rerun.
//! Failures are different: a panic can be transient (resource pressure,
//! a bug fixed while the server kept running), so error outcomes are
//! delivered to their waiters but **never cached** — the next submission
//! of that key claims it and recomputes.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::digest::CellKey;

/// The rendered outcome of one cell, shared by every sweep that needs it.
#[derive(Debug)]
pub struct CellOutput {
    /// False when the cell panicked.
    pub ok: bool,
    /// Benchmark name.
    pub bench: String,
    /// Memory-kind slug.
    pub mem: String,
    /// Rendered JSON object: a `cwfmem.run.v1` document for finished
    /// cells, an `{"error": ...}` object for failed ones.
    pub json: String,
}

/// What [`ResultCache::submit`] decided about one cell.
pub enum Submission {
    /// The key was already computed; here is the result.
    Hit(Arc<CellOutput>),
    /// Another submission of this key is computing; the subscriber will
    /// be delivered on completion.
    Batched,
    /// This submission claimed the key; the caller must compute it and
    /// call [`ResultCache::complete`].
    Claimed,
}

/// A subscriber waiting on an in-flight key (opaque to the cache).
pub type Subscriber = Box<dyn FnOnce(Arc<CellOutput>) + Send + 'static>;

enum Slot {
    InFlight(Vec<Subscriber>),
    Ready(Arc<CellOutput>),
}

/// Concurrent memo table over cell outcomes.
#[derive(Default)]
pub struct ResultCache {
    map: Mutex<BTreeMap<(u64, u64), Slot>>,
    hits: AtomicU64,
    batched: AtomicU64,
    misses: AtomicU64,
}

impl Default for Slot {
    fn default() -> Self {
        Slot::InFlight(Vec::new())
    }
}

impl ResultCache {
    /// An empty cache.
    #[must_use]
    pub fn new() -> ResultCache {
        ResultCache::default()
    }

    /// Route one cell: hit, batch onto an in-flight computation, or
    /// claim. `subscriber` fires for the batched case only; hits return
    /// the value directly so the caller can deliver without re-entry.
    pub fn submit(&self, key: CellKey, subscriber: Subscriber) -> Submission {
        let mut map = self.map.lock().expect("cache poisoned");
        match map.get_mut(&(key.digest, key.seed)) {
            Some(Slot::Ready(out)) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Submission::Hit(Arc::clone(out))
            }
            Some(Slot::InFlight(subs)) => {
                self.batched.fetch_add(1, Ordering::Relaxed);
                subs.push(subscriber);
                Submission::Batched
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                map.insert((key.digest, key.seed), Slot::InFlight(vec![subscriber]));
                Submission::Claimed
            }
        }
    }

    /// Publish a claimed key's result and deliver every subscriber
    /// (including the claimant's own, registered at submit time).
    ///
    /// Successful outcomes become [`Slot::Ready`] and serve future hits;
    /// failed outcomes (`!out.ok`) only drain the waiting subscribers —
    /// the key is *removed*, so a later submission recomputes instead of
    /// replaying a possibly-transient error forever.
    ///
    /// # Panics
    ///
    /// Panics if the key was never claimed — a protocol bug, not a
    /// recoverable condition.
    pub fn complete(&self, key: CellKey, out: &Arc<CellOutput>) {
        let subs = {
            let mut map = self.map.lock().expect("cache poisoned");
            let slot = if out.ok {
                map.insert((key.digest, key.seed), Slot::Ready(Arc::clone(out)))
            } else {
                map.remove(&(key.digest, key.seed))
            };
            match slot {
                Some(Slot::InFlight(subs)) => subs,
                _ => panic!("complete() on a key that was not in flight"),
            }
        };
        // Deliver outside the lock: subscribers touch sweep state.
        for sub in subs {
            sub(Arc::clone(out));
        }
    }

    /// `(hits, batched, misses)` counters — hits served from a finished
    /// entry, duplicates batched onto an in-flight one, and unique
    /// computations claimed.
    #[must_use]
    pub fn stats(&self) -> (u64, u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.batched.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }

    /// Number of keys finished or in flight.
    #[must_use]
    pub fn len(&self) -> usize {
        self.map.lock().expect("cache poisoned").len()
    }

    /// True when no key has ever been submitted.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl std::fmt::Debug for ResultCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let (hits, batched, misses) = self.stats();
        f.debug_struct("ResultCache")
            .field("keys", &self.len())
            .field("hits", &hits)
            .field("batched", &batched)
            .field("misses", &misses)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    fn key(digest: u64, seed: u64) -> CellKey {
        CellKey { digest, seed }
    }

    fn output() -> Arc<CellOutput> {
        Arc::new(CellOutput { ok: true, bench: "mcf".into(), mem: "rl".into(), json: "{}".into() })
    }

    #[test]
    fn claim_batch_hit_lifecycle() {
        let cache = ResultCache::new();
        let delivered = Arc::new(AtomicU32::new(0));
        let subscriber = |delivered: &Arc<AtomicU32>| {
            let d = Arc::clone(delivered);
            Box::new(move |_out: Arc<CellOutput>| {
                d.fetch_add(1, Ordering::Relaxed);
            }) as Subscriber
        };
        assert!(matches!(cache.submit(key(1, 2), subscriber(&delivered)), Submission::Claimed));
        assert!(matches!(cache.submit(key(1, 2), subscriber(&delivered)), Submission::Batched));
        assert!(matches!(cache.submit(key(1, 3), subscriber(&delivered)), Submission::Claimed));
        cache.complete(key(1, 2), &output());
        // Claimant's and the duplicate's subscribers both fired.
        assert_eq!(delivered.load(Ordering::Relaxed), 2);
        assert!(matches!(cache.submit(key(1, 2), subscriber(&delivered)), Submission::Hit(_)));
        assert_eq!(cache.stats(), (1, 1, 2));
        assert_eq!(cache.len(), 2);
    }

    #[test]
    #[should_panic(expected = "not in flight")]
    fn completing_an_unclaimed_key_is_a_bug() {
        ResultCache::new().complete(key(9, 9), &output());
    }

    #[test]
    fn failed_cells_are_not_sticky() {
        let cache = ResultCache::new();
        let noop = || Box::new(|_out: Arc<CellOutput>| {}) as Subscriber;
        let failure = Arc::new(CellOutput {
            ok: false,
            bench: "mcf".into(),
            mem: "rl".into(),
            json: "{\"error\":\"panic\"}".into(),
        });

        // First attempt fails: waiters are delivered, key is forgotten.
        assert!(matches!(cache.submit(key(5, 1), noop()), Submission::Claimed));
        let delivered = Arc::new(AtomicU32::new(0));
        let d = Arc::clone(&delivered);
        let counting = Box::new(move |out: Arc<CellOutput>| {
            assert!(!out.ok);
            d.fetch_add(1, Ordering::Relaxed);
        }) as Subscriber;
        assert!(matches!(cache.submit(key(5, 1), counting), Submission::Batched));
        cache.complete(key(5, 1), &failure);
        assert_eq!(delivered.load(Ordering::Relaxed), 1, "waiters still get the error doc");
        assert_eq!(cache.len(), 0, "error outcome must not occupy the key");

        // Second attempt is a fresh claim (not a hit on the error doc)
        // and a success this time sticks.
        assert!(matches!(cache.submit(key(5, 1), noop()), Submission::Claimed));
        cache.complete(key(5, 1), &output());
        assert!(matches!(cache.submit(key(5, 1), noop()), Submission::Hit(out) if out.ok));
    }
}
