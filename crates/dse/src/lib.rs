#![forbid(unsafe_code)]
//! Design-space-exploration service for `cwfmem`.
//!
//! The batch front end (`cwfmem sweep`) runs one grid and exits; this
//! crate turns the same deterministic cell machinery into a *service*:
//!
//! * [`pool`] — a work-stealing worker pool executing whole-simulation
//!   cells with panic isolation;
//! * [`digest`] — stable `(config-digest, seed)` cell identities,
//!   canonicalized through the `cwfmem.ckpt.v1` encoding;
//! * [`cache`] — a result cache that memoizes finished cells *and*
//!   batches duplicate submissions onto in-flight computations
//!   (failures are delivered but never memoized, so a transient error
//!   cannot poison a cell key for the server's lifetime);
//! * [`server`] — the `cwfmem serve` HTTP/JSON front end (submit
//!   sweeps, poll or stream status, fetch per-cell results and Perfetto
//!   traces, graceful shutdown);
//! * [`http`] / [`json`] — the hand-rolled HTTP/1.1 and JSON layers
//!   (the build environment is offline; no dependencies).
//!
//! Everything observable is deterministic: cell seeds are pure
//! functions of the sweep request, cached results are bit-identical to
//! reruns, and delivery is exactly-once per result slot (DESIGN.md §16
//! has the protocol).

pub mod cache;
pub mod digest;
pub mod http;
pub mod json;
pub mod pool;
pub mod server;

pub use cache::{CellOutput, ResultCache, Submission};
pub use digest::{cell_key, config_digest, CellKey};
pub use json::Json;
pub use pool::Pool;
pub use server::Server;
