//! The `cwfmem serve` sweep server.
//!
//! Holds the design-space-exploration state machine behind the HTTP
//! front end: sweeps are submitted as cell grids, each cell is routed
//! through the [`ResultCache`] (hit / batch-onto-in-flight / claim) and
//! claimed cells execute on the work-stealing [`Pool`]. Delivery is
//! exactly-once per `(sweep, cell)` slot by construction — the cache
//! owns the only path from a computed result to its subscribers, and a
//! slot rejects (and counts) a second delivery instead of overwriting.
//!
//! Endpoints (all JSON; see DESIGN.md §16 for the full contract):
//!
//! | method/path                      | behavior                         |
//! |----------------------------------|----------------------------------|
//! | `POST /sweep`                    | submit a grid, returns `{id,...}`|
//! | `GET /sweep/<id>`                | full status + per-cell results   |
//! | `GET /sweep/<id>/stream`         | chunked ndjson progress          |
//! | `GET /sweep/<id>/cell/<n>`       | one cell's raw `cwfmem.run.v1`   |
//! | `GET /sweep/<id>/cell/<n>/trace` | Perfetto trace of a rerun        |
//! | `GET /stats`                     | cache/pool counters              |
//! | `GET /healthz`                   | liveness probe                   |
//! | `POST /shutdown`                 | graceful stop                    |

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use sim_harness::config::MemKind;
use sim_harness::sweep::{cell_seed, Cell};
use sim_harness::{report, Kernel, RunConfig};

use crate::cache::{CellOutput, ResultCache, Submission};
use crate::digest::cell_key;
use crate::http::{self, Chunked};
use crate::json::{quote, Json};
use crate::pool::Pool;

/// Largest cell grid one `POST /sweep` may submit.
pub const MAX_CELLS: usize = 10_000;

/// One submitted sweep: its cell grid and the result slots filling in.
struct SweepJob {
    id: u64,
    cells: Vec<Cell>,
    results: Mutex<Vec<Option<Arc<CellOutput>>>>,
    done: AtomicUsize,
    failed: AtomicUsize,
    /// Deliveries that found their slot already filled. Always zero; a
    /// nonzero value means the exactly-once protocol broke (the soak
    /// test asserts on it).
    duplicates: AtomicUsize,
    /// Cells answered instantly from a finished cache entry.
    cache_hits: AtomicU64,
    /// Cells batched onto another submission's in-flight computation.
    batched: AtomicU64,
}

impl SweepJob {
    fn new(id: u64, cells: Vec<Cell>) -> SweepJob {
        let n = cells.len();
        SweepJob {
            id,
            cells,
            results: Mutex::new(vec![None; n]),
            done: AtomicUsize::new(0),
            failed: AtomicUsize::new(0),
            duplicates: AtomicUsize::new(0),
            cache_hits: AtomicU64::new(0),
            batched: AtomicU64::new(0),
        }
    }

    /// Fill slot `i`. First delivery wins; a second is counted as a
    /// protocol violation and dropped.
    fn deliver(&self, i: usize, out: &Arc<CellOutput>) {
        let mut slots = self.results.lock().expect("sweep results poisoned");
        if slots[i].is_some() {
            self.duplicates.fetch_add(1, Ordering::Relaxed);
            return;
        }
        slots[i] = Some(Arc::clone(out));
        drop(slots);
        if !out.ok {
            self.failed.fetch_add(1, Ordering::Relaxed);
        }
        self.done.fetch_add(1, Ordering::Relaxed);
    }

    fn is_done(&self) -> bool {
        self.done.load(Ordering::Acquire) == self.cells.len()
    }

    /// One progress line (the `/stream` ndjson shape; also the prefix of
    /// the full status document).
    fn progress_json(&self) -> String {
        let done = self.done.load(Ordering::Acquire);
        format!(
            "{{\"id\": {}, \"state\": {}, \"total\": {}, \"done\": {done}, \
             \"failed\": {}, \"cache_hits\": {}, \"batched\": {}, \
             \"duplicate_deliveries\": {}}}",
            self.id,
            quote(if done == self.cells.len() { "done" } else { "running" }),
            self.cells.len(),
            self.failed.load(Ordering::Relaxed),
            self.cache_hits.load(Ordering::Relaxed),
            self.batched.load(Ordering::Relaxed),
            self.duplicates.load(Ordering::Relaxed),
        )
    }

    /// The full status document: progress plus every cell's identity,
    /// state, and (when finished) its result document.
    ///
    /// Seeds and digests are emitted as strings — they are full 64-bit
    /// values and would lose precision as JSON numbers.
    fn status_json(&self) -> String {
        let slots = self.results.lock().expect("sweep results poisoned");
        let mut out = self.progress_json();
        out.pop(); // reopen the object to append "cells"
        out.push_str(", \"cells\": [");
        for (i, (cell, slot)) in self.cells.iter().zip(slots.iter()).enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let key = cell_key(cell);
            let _ = write!(
                out,
                "{{\"bench\": {}, \"mem\": {}, \"seed\": \"{}\", \"digest\": \"{:#018x}\", ",
                quote(&cell.bench),
                quote(&cell.cfg.mem.slug()),
                cell.cfg.seed,
                key.digest
            );
            match slot {
                Some(r) => {
                    let _ = write!(
                        out,
                        "\"state\": \"done\", \"ok\": {}, \"result\": {}}}",
                        r.ok,
                        r.json.trim_end()
                    );
                }
                None => out.push_str("\"state\": \"pending\", \"ok\": null, \"result\": null}"),
            }
        }
        out.push_str("]}\n");
        out
    }
}

/// Shared server state: the pool, the cache, and every sweep ever
/// submitted (a dev-tool server; sweeps are retained until shutdown).
struct State {
    pool: Pool,
    cache: ResultCache,
    sweeps: Mutex<BTreeMap<u64, Arc<SweepJob>>>,
    next_id: AtomicU64,
    /// Fast-path stop flag, checked by accept and stream loops.
    stop_flag: AtomicBool,
    /// Slow-path stop signal for [`Server::wait`].
    stop: Mutex<bool>,
    stopped: Condvar,
}

impl State {
    fn new(workers: usize) -> State {
        State {
            pool: Pool::new(workers),
            cache: ResultCache::new(),
            sweeps: Mutex::new(BTreeMap::new()),
            next_id: AtomicU64::new(0),
            stop_flag: AtomicBool::new(false),
            stop: Mutex::new(false),
            stopped: Condvar::new(),
        }
    }

    fn stopping(&self) -> bool {
        self.stop_flag.load(Ordering::Acquire)
    }

    fn request_stop(&self) {
        self.stop_flag.store(true, Ordering::Release);
        *self.stop.lock().expect("stop poisoned") = true;
        self.stopped.notify_all();
    }
}

/// Render a panic payload (`&str` or `String` in practice) as text.
fn panic_text(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

/// Execute one cell and render its outcome. Runs on a pool worker;
/// panics become a failed [`CellOutput`]. Failures are delivered to the
/// sweeps waiting on the cell but never memoized (see
/// [`ResultCache::complete`]): a later sweep retries instead of being
/// served a possibly-transient error doc forever.
fn run_cell(cell: &Cell) -> CellOutput {
    let run = catch_unwind(AssertUnwindSafe(|| {
        let (m, k, v) = sim_harness::run_benchmark_verified(&cell.cfg, &cell.bench);
        match v {
            Some(v) => {
                let clean = v.is_clean();
                (report::to_json_verified(&m, &k, &v), clean)
            }
            None => (report::to_json_diag(&m, &k), true),
        }
    }));
    match run {
        Ok((json, clean)) => {
            CellOutput { ok: clean, bench: cell.bench.clone(), mem: cell.cfg.mem.slug(), json }
        }
        Err(payload) => CellOutput {
            ok: false,
            bench: cell.bench.clone(),
            mem: cell.cfg.mem.slug(),
            json: format!(
                "{{\"error\": {}, \"bench\": {}, \"mem\": {}}}\n",
                quote(&panic_text(&*payload)),
                quote(&cell.bench),
                quote(&cell.cfg.mem.slug())
            ),
        },
    }
}

/// Register a sweep and route every cell through the cache: hits deliver
/// immediately, duplicates of in-flight keys batch, and claimed keys
/// spawn a pool job whose completion fans out to every subscriber.
fn submit_sweep(state: &Arc<State>, cells: Vec<Cell>) -> Arc<SweepJob> {
    let id = state.next_id.fetch_add(1, Ordering::Relaxed) + 1;
    let job = Arc::new(SweepJob::new(id, cells));
    state.sweeps.lock().expect("sweeps poisoned").insert(id, Arc::clone(&job));
    for (i, cell) in job.cells.iter().enumerate() {
        let key = cell_key(cell);
        let subscriber = {
            let job = Arc::clone(&job);
            Box::new(move |out: Arc<CellOutput>| job.deliver(i, &out))
        };
        match state.cache.submit(key, subscriber) {
            Submission::Hit(out) => {
                job.cache_hits.fetch_add(1, Ordering::Relaxed);
                job.deliver(i, &out);
            }
            Submission::Batched => {
                job.batched.fetch_add(1, Ordering::Relaxed);
            }
            Submission::Claimed => {
                let cell = cell.clone();
                let st = Arc::clone(state);
                state.pool.spawn(Box::new(move || {
                    let out = Arc::new(run_cell(&cell));
                    st.cache.complete(key, &out);
                }));
            }
        }
    }
    job
}

/// Parse a `POST /sweep` body into its cell grid.
///
/// Shape: `{"benches": [..], "kinds": [..], "reads": N, "quick": bool,
/// "cores": N, "verify": bool, "kernel": "cycle"|"event", "seed": N}`.
/// Benchmarks and kinds are validated here so a typo is a 400, not a
/// panicked cell. Tracing is always off in sweep cells (the trace
/// endpoint reruns a cell with it on).
fn parse_sweep_request(body: &[u8]) -> Result<Vec<Cell>, String> {
    let text = std::str::from_utf8(body).map_err(|e| format!("body is not UTF-8: {e}"))?;
    let v = Json::parse(text)?;
    let str_list = |key: &str| -> Result<Vec<String>, String> {
        v.get(key)
            .and_then(Json::as_arr)
            .filter(|a| !a.is_empty())
            .map(|a| {
                a.iter()
                    .map(|x| x.as_str().map(str::to_owned))
                    .collect::<Option<Vec<_>>>()
                    .ok_or_else(|| format!("'{key}' must be an array of strings"))
            })
            .ok_or_else(|| format!("missing or empty '{key}' array"))?
    };
    let benches = str_list("benches")?;
    for b in &benches {
        if workloads::by_name(b).is_none() {
            return Err(format!("unknown benchmark '{b}'"));
        }
    }
    let kinds: Vec<MemKind> = str_list("kinds")?
        .iter()
        .map(|k| MemKind::parse(k).ok_or_else(|| format!("unknown memory kind '{k}'")))
        .collect::<Result<_, _>>()?;
    let reads = v.get("reads").and_then(Json::as_u64).unwrap_or(2_000);
    let quick = v.get("quick").and_then(Json::as_bool).unwrap_or(false);
    let cores = v.get("cores").and_then(Json::as_u64);
    let verify = v.get("verify").and_then(Json::as_bool);
    let kernel = match v.get("kernel").and_then(Json::as_str) {
        Some(k) => Some(Kernel::from_env_str(k).ok_or_else(|| format!("unknown kernel '{k}'"))?),
        None => None,
    };
    let base_seed = v.get("seed").and_then(Json::as_u64);
    if benches.len().saturating_mul(kinds.len()) > MAX_CELLS {
        return Err(format!("grid exceeds {MAX_CELLS} cells"));
    }
    let mut cells = Vec::with_capacity(benches.len() * kinds.len());
    for b in &benches {
        for &k in &kinds {
            let mut cfg =
                if quick { RunConfig::quick(k, reads) } else { RunConfig::paper(k, reads) };
            if let Some(c) = cores {
                cfg.cores = u8::try_from(c).map_err(|_| "'cores' out of range".to_owned())?;
            }
            if let Some(vfy) = verify {
                cfg.verify = vfy;
            }
            if let Some(kn) = kernel {
                cfg.kernel = kn;
            }
            cfg.trace = false;
            cfg.seed = cell_seed(base_seed.unwrap_or(cfg.seed), b, k);
            cells.push(Cell { bench: b.clone(), cfg });
        }
    }
    Ok(cells)
}

/// Handle one connection (one request; `Connection: close` semantics).
#[allow(clippy::too_many_lines)]
fn handle(state: &Arc<State>, stream: &mut TcpStream) {
    let req = match http::read_request(stream) {
        Ok(Some(r)) => r,
        Ok(None) => return,
        Err(e) => {
            let _ = http::respond_error(stream, 400, &e.to_string());
            return;
        }
    };
    let path = req.path.clone();
    let segs: Vec<&str> = path.split('/').filter(|s| !s.is_empty()).collect();
    let lookup = |id: &str| -> Result<Arc<SweepJob>, String> {
        let id: u64 = id.parse().map_err(|_| format!("bad sweep id '{id}'"))?;
        state
            .sweeps
            .lock()
            .expect("sweeps poisoned")
            .get(&id)
            .cloned()
            .ok_or_else(|| format!("no such sweep {id}"))
    };
    let result = match (req.method.as_str(), segs.as_slice()) {
        ("GET", ["healthz"]) => http::respond_json(stream, "{\"ok\": true}\n"),
        ("GET", ["stats"]) => {
            let (hits, batched, misses) = state.cache.stats();
            let body = format!(
                "{{\"cache\": {{\"keys\": {}, \"hits\": {hits}, \"batched\": {batched}, \
                 \"misses\": {misses}}}, \"pool\": {{\"workers\": {}, \"in_flight\": {}, \
                 \"steals\": {}, \"panicked\": {}}}, \"sweeps\": {}}}\n",
                state.cache.len(),
                state.pool.workers(),
                state.pool.in_flight(),
                state.pool.steals(),
                state.pool.panicked(),
                state.sweeps.lock().expect("sweeps poisoned").len()
            );
            http::respond_json(stream, &body)
        }
        ("POST", ["sweep"]) => match parse_sweep_request(&req.body) {
            Ok(cells) => {
                let unique: std::collections::BTreeSet<_> = cells.iter().map(cell_key).collect();
                let n_unique = unique.len();
                let job = submit_sweep(state, cells);
                let body = format!(
                    "{{\"id\": {}, \"cells\": {}, \"unique\": {n_unique}}}\n",
                    job.id,
                    job.cells.len()
                );
                http::respond_json(stream, &body)
            }
            Err(e) => http::respond_error(stream, 400, &e),
        },
        ("GET", ["sweep", id]) => match lookup(id) {
            Ok(job) => http::respond_json(stream, &job.status_json()),
            Err(e) => http::respond_error(stream, 404, &e),
        },
        ("GET", ["sweep", id, "stream"]) => match lookup(id) {
            Ok(job) => stream_progress(state, &job, stream),
            Err(e) => http::respond_error(stream, 404, &e),
        },
        ("GET", ["sweep", id, "cell", n]) => match lookup(id) {
            Ok(job) => cell_result(&job, n, stream),
            Err(e) => http::respond_error(stream, 404, &e),
        },
        ("GET", ["sweep", id, "cell", n, "trace"]) => match lookup(id) {
            Ok(job) => cell_trace(&job, n, stream),
            Err(e) => http::respond_error(stream, 404, &e),
        },
        ("POST", ["shutdown"]) => {
            let r = http::respond_json(stream, "{\"stopping\": true}\n");
            state.request_stop();
            r
        }
        (m, _) if m != "GET" && m != "POST" => {
            http::respond_error(stream, 405, &format!("method {m} not allowed"))
        }
        _ => http::respond_error(stream, 404, &format!("no route for {} {path}", req.method)),
    };
    // A write error means the client went away; nothing to clean up.
    drop(result);
}

/// Stream progress lines (ndjson over chunked encoding) until the sweep
/// finishes or the server stops. Each line is [`SweepJob::progress_json`];
/// a line is sent whenever the done-count moves.
fn stream_progress(
    state: &Arc<State>,
    job: &Arc<SweepJob>,
    stream: &mut TcpStream,
) -> std::io::Result<()> {
    let mut ch = Chunked::start(stream, "application/x-ndjson")?;
    let mut last_sent = usize::MAX; // force an initial line
    loop {
        let done = job.done.load(Ordering::Acquire);
        if done != last_sent {
            last_sent = done;
            let mut line = job.progress_json();
            line.push('\n');
            ch.send(line.as_bytes())?;
        }
        if job.is_done() || state.stopping() {
            return ch.finish();
        }
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// Look up cell `n` of a sweep, 404/409-style errors as strings.
fn cell_of<'a>(job: &'a SweepJob, n: &str) -> Result<(usize, &'a Cell), (u16, String)> {
    let i: usize = n.parse().map_err(|_| (400, format!("bad cell index '{n}'")))?;
    match job.cells.get(i) {
        Some(c) => Ok((i, c)),
        None => Err((404, format!("sweep {} has {} cells", job.id, job.cells.len()))),
    }
}

/// Serve one finished cell's raw result document (exactly the bytes a
/// `cwfmem run --json` of the same configuration would print, so CI can
/// diff server output against an offline run).
fn cell_result(job: &Arc<SweepJob>, n: &str, stream: &mut TcpStream) -> std::io::Result<()> {
    let (i, _) = match cell_of(job, n) {
        Ok(x) => x,
        Err((status, msg)) => return http::respond_error(stream, status, &msg),
    };
    let slot = job.results.lock().expect("sweep results poisoned")[i].clone();
    match slot {
        Some(out) => http::respond_json(stream, &out.json),
        None => http::respond_error(stream, 404, &format!("cell {i} is still running")),
    }
}

/// Rerun one cell with tracing enabled and serve the Perfetto document.
/// The rerun is deterministic (same config, same seed), so the trace
/// depicts exactly the run whose metrics the sweep returned.
fn cell_trace(job: &Arc<SweepJob>, n: &str, stream: &mut TcpStream) -> std::io::Result<()> {
    let (_, cell) = match cell_of(job, n) {
        Ok(x) => x,
        Err((status, msg)) => return http::respond_error(stream, status, &msg),
    };
    let mut cfg = cell.cfg;
    cfg.trace = true;
    cfg.verify = false; // the sweep already verified; the trace rerun just records
    let bench = cell.bench.clone();
    let traced = catch_unwind(AssertUnwindSafe(|| sim_harness::run_benchmark_traced(&cfg, &bench)));
    match traced {
        Ok((_, _, _, Some(t))) => http::respond_json(stream, &t.perfetto_json()),
        Ok((_, _, _, None)) => http::respond_error(stream, 500, "trace rerun produced no trace"),
        Err(payload) => http::respond_error(stream, 500, &panic_text(&*payload)),
    }
}

/// A running sweep server. Dropping (or [`Server::stop`]) shuts it down:
/// the accept loop exits, queued cells finish on the pool, workers join.
pub struct Server {
    addr: SocketAddr,
    state: Arc<State>,
    accept: Option<std::thread::JoinHandle<()>>,
}

impl Server {
    /// Bind `bind` (e.g. `127.0.0.1:0` for an ephemeral port) and start
    /// the accept loop plus `workers` pool workers.
    ///
    /// # Errors
    ///
    /// Fails if the address cannot be bound.
    pub fn start(bind: &str, workers: usize) -> std::io::Result<Server> {
        let listener = TcpListener::bind(bind)?;
        let addr = listener.local_addr()?;
        let state = Arc::new(State::new(workers));
        let accept_state = Arc::clone(&state);
        let accept = std::thread::Builder::new()
            .name("cwf-dse-accept".to_owned())
            .spawn(move || accept_loop(&listener, &accept_state))?;
        Ok(Server { addr, state, accept: Some(accept) })
    }

    /// The bound address (the actual port when bound with port 0).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Block until shutdown is requested (`POST /shutdown` or
    /// [`Server::stop`] from another thread).
    pub fn wait(&self) {
        let mut stopped = self.state.stop.lock().expect("stop poisoned");
        while !*stopped {
            stopped = self.state.stopped.wait(stopped).expect("stop wait");
        }
    }

    /// Request shutdown and join the accept loop. Queued cells finish
    /// (the pool drains before its workers join).
    pub fn stop(mut self) {
        self.shutdown_impl();
    }

    fn shutdown_impl(&mut self) {
        self.state.request_stop();
        // Poke the (blocking) accept call so the loop observes the flag.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown_impl();
    }
}

fn accept_loop(listener: &TcpListener, state: &Arc<State>) {
    for conn in listener.incoming() {
        if state.stopping() {
            return;
        }
        let Ok(mut stream) = conn else { continue };
        let state = Arc::clone(state);
        // Handler threads are detached; they hold the state alive and
        // exit on their own (every endpoint is bounded except /stream,
        // which watches the stop flag).
        let spawned = std::thread::Builder::new()
            .name("cwf-dse-conn".to_owned())
            .spawn(move || handle(&state, &mut stream));
        drop(spawned);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::http::client_request;

    fn post_sweep(addr: SocketAddr, body: &str) -> Json {
        let (status, text) = client_request(addr, "POST", "/sweep", Some(body)).unwrap();
        assert_eq!(status, 200, "body: {text}");
        Json::parse(text.trim()).unwrap()
    }

    fn wait_done(addr: SocketAddr, id: u64) -> Json {
        loop {
            let (status, text) =
                client_request(addr, "GET", &format!("/sweep/{id}"), None).unwrap();
            assert_eq!(status, 200);
            let v = Json::parse(text.trim()).unwrap();
            if v.get("state").and_then(Json::as_str) == Some("done") {
                return v;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
    }

    #[test]
    fn sweep_lifecycle_end_to_end() {
        let server = Server::start("127.0.0.1:0", 2).unwrap();
        let addr = server.addr();
        let (status, body) = client_request(addr, "GET", "/healthz", None).unwrap();
        assert_eq!((status, body.trim()), (200, "{\"ok\": true}"));

        let v = post_sweep(
            addr,
            r#"{"benches": ["mcf"], "kinds": ["rl", "ddr3", "rl"],
                "reads": 80, "quick": true, "verify": false}"#,
        );
        let id = v.get("id").and_then(Json::as_u64).unwrap();
        // "rl" twice: 3 cells, 2 unique — the duplicate batches or hits.
        assert_eq!(v.get("cells").and_then(Json::as_u64), Some(3));
        assert_eq!(v.get("unique").and_then(Json::as_u64), Some(2));

        let st = wait_done(addr, id);
        assert_eq!(st.get("done").and_then(Json::as_u64), Some(3));
        assert_eq!(st.get("failed").and_then(Json::as_u64), Some(0));
        assert_eq!(st.get("duplicate_deliveries").and_then(Json::as_u64), Some(0));
        let dup_served = st.get("cache_hits").and_then(Json::as_u64).unwrap()
            + st.get("batched").and_then(Json::as_u64).unwrap();
        assert_eq!(dup_served, 1);
        let cells = st.get("cells").and_then(Json::as_arr).unwrap();
        assert_eq!(cells.len(), 3);
        // Cells 0 and 2 are the same (bench, kind): identical documents.
        assert_eq!(cells[0].get("result").unwrap(), cells[2].get("result").unwrap());
        assert_ne!(cells[0].get("result").unwrap(), cells[1].get("result").unwrap());

        // The raw cell document parses and matches the embedded result.
        let (status, doc) =
            client_request(addr, "GET", &format!("/sweep/{id}/cell/0"), None).unwrap();
        assert_eq!(status, 200);
        let parsed = Json::parse(doc.trim()).unwrap();
        assert_eq!(parsed.get("schema").and_then(Json::as_str), Some("cwfmem.run.v1"));

        // A second identical sweep is served entirely from the cache.
        let v2 = post_sweep(
            addr,
            r#"{"benches": ["mcf"], "kinds": ["rl", "ddr3", "rl"],
                "reads": 80, "quick": true, "verify": false}"#,
        );
        let id2 = v2.get("id").and_then(Json::as_u64).unwrap();
        let st2 = wait_done(addr, id2);
        assert_eq!(st2.get("cache_hits").and_then(Json::as_u64), Some(3));
        server.stop();
    }

    #[test]
    fn streams_progress_and_serves_traces() {
        let server = Server::start("127.0.0.1:0", 2).unwrap();
        let addr = server.addr();
        let v = post_sweep(
            addr,
            r#"{"benches": ["stream"], "kinds": ["rl"], "reads": 80,
                "quick": true, "verify": false}"#,
        );
        let id = v.get("id").and_then(Json::as_u64).unwrap();
        // The stream endpoint blocks until done, then terminates; its
        // last line must report the finished state.
        let (status, body) =
            client_request(addr, "GET", &format!("/sweep/{id}/stream"), None).unwrap();
        assert_eq!(status, 200);
        let last = body.lines().last().unwrap();
        let v = Json::parse(last).unwrap();
        assert_eq!(v.get("state").and_then(Json::as_str), Some("done"));
        assert_eq!(v.get("done").and_then(Json::as_u64), Some(1));

        let (status, trace) =
            client_request(addr, "GET", &format!("/sweep/{id}/cell/0/trace"), None).unwrap();
        assert_eq!(status, 200);
        assert!(cwf_tracelog::json::validate_chrome_trace(&trace).is_ok());
        server.stop();
    }

    #[test]
    fn rejects_bad_requests() {
        let server = Server::start("127.0.0.1:0", 1).unwrap();
        let addr = server.addr();
        for (body, needle) in [
            ("{", "expected"),
            ("{}", "missing or empty 'benches'"),
            (r#"{"benches": ["nope"], "kinds": ["rl"]}"#, "unknown benchmark"),
            (r#"{"benches": ["mcf"], "kinds": ["warp-drive"]}"#, "unknown memory kind"),
            (r#"{"benches": ["mcf"], "kinds": ["rl"], "kernel": "quantum"}"#, "unknown kernel"),
        ] {
            let (status, text) = client_request(addr, "POST", "/sweep", Some(body)).unwrap();
            assert_eq!(status, 400, "body {body} -> {text}");
            assert!(text.contains(needle), "body {body} -> {text}");
        }
        let (status, _) = client_request(addr, "GET", "/sweep/999", None).unwrap();
        assert_eq!(status, 404);
        let (status, _) = client_request(addr, "DELETE", "/sweep/1", None).unwrap();
        assert_eq!(status, 405);
        let (status, _) = client_request(addr, "GET", "/no/such/route", None).unwrap();
        assert_eq!(status, 404);
        server.stop();
    }

    #[test]
    fn failed_cells_count_but_are_not_sticky() {
        // An unknown-benchmark cell can't be built via the HTTP API (400),
        // so exercise the failure path through submit_sweep directly with
        // a bench name bypassing validation (panics in run_cell).
        let state = Arc::new(State::new(2));
        let cfg = RunConfig::quick(MemKind::Rl, 50);
        let cells = vec![
            Cell { bench: "no-such-bench".into(), cfg },
            Cell { bench: "no-such-bench".into(), cfg },
        ];
        let job = submit_sweep(&state, cells);
        while !job.is_done() {
            std::thread::sleep(Duration::from_millis(2));
        }
        assert_eq!(job.failed.load(Ordering::Relaxed), 2);
        assert_eq!(job.duplicates.load(Ordering::Relaxed), 0);
        // Both cells share a key: one claimed, one batched.
        assert_eq!(job.batched.load(Ordering::Relaxed), 1);
        let slots = job.results.lock().unwrap();
        assert!(slots.iter().all(|s| s.as_ref().is_some_and(|o| !o.ok)));
        assert!(slots[0].as_ref().unwrap().json.contains("unknown benchmark"));
        drop(slots);

        // The error doc must not poison the key: the same cell submitted
        // again is a fresh claim, not a cache hit on the stale failure.
        assert_eq!(state.cache.len(), 0, "failures must not occupy the cache");
        let retry = submit_sweep(&state, vec![Cell { bench: "no-such-bench".into(), cfg }]);
        while !retry.is_done() {
            std::thread::sleep(Duration::from_millis(2));
        }
        assert_eq!(retry.cache_hits.load(Ordering::Relaxed), 0, "retry must recompute");
        let (_, _, misses) = state.cache.stats();
        assert_eq!(misses, 2, "both attempts claimed the key");
    }

    /// The "failed-then-fixed" regression the serve-mode bugfix is about:
    /// a cell whose first run fails must be recomputed — and can succeed —
    /// on the next submission, rather than replaying the cached error.
    #[test]
    fn failed_then_fixed_cell_recomputes_to_success() {
        let cache = ResultCache::new();
        let k = crate::digest::CellKey { digest: 77, seed: 1 };
        let noop = || Box::new(|_out: Arc<CellOutput>| {}) as crate::cache::Subscriber;
        assert!(matches!(cache.submit(k, noop()), Submission::Claimed));
        cache.complete(
            k,
            &Arc::new(CellOutput {
                ok: false,
                bench: "stream".into(),
                mem: "rl".into(),
                json: "{\"error\":\"transient\"}".into(),
            }),
        );
        // "Fixed" now: the next submission claims and the success sticks.
        assert!(matches!(cache.submit(k, noop()), Submission::Claimed));
        cache.complete(
            k,
            &Arc::new(CellOutput {
                ok: true,
                bench: "stream".into(),
                mem: "rl".into(),
                json: "{}".into(),
            }),
        );
        match cache.submit(k, noop()) {
            Submission::Hit(out) => assert!(out.ok, "hit must serve the fixed result"),
            _ => panic!("fixed cell must now be cached"),
        }
    }
}
