//! Work-stealing worker pool for sweep cells.
//!
//! Submissions are distributed round-robin across per-worker deques; a
//! worker drains its own deque LIFO (cache-warm) and, when empty, steals
//! FIFO from its siblings — the classic work-stealing topology, built on
//! `std` mutexes because the container vendors no lock-free deque. Cell
//! granularity is a whole simulation (milliseconds to minutes), so deque
//! lock traffic is noise.
//!
//! Panic isolation is the *caller's* job ([`crate::server`] wraps each
//! cell in `catch_unwind`); the pool itself still survives a panicking
//! job — the worker thread catches it, counts it, and keeps serving.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// A unit of pool work.
pub type Job = Box<dyn FnOnce() + Send + 'static>;

struct Shared {
    /// One deque per worker; submissions round-robin, idle workers steal.
    deques: Vec<Mutex<VecDeque<Job>>>,
    /// Sleep/wake coordination for idle workers.
    idle: Mutex<()>,
    wake: Condvar,
    shutdown: AtomicBool,
    /// Jobs submitted but not yet finished (running or queued).
    in_flight: AtomicUsize,
    /// Jobs that completed by panicking (the catch keeps the worker up).
    panicked: AtomicU64,
    /// Jobs a worker took from a sibling's deque.
    steals: AtomicU64,
}

/// A fixed-size work-stealing thread pool.
pub struct Pool {
    shared: Arc<Shared>,
    workers: Vec<std::thread::JoinHandle<()>>,
    next: AtomicUsize,
}

impl Pool {
    /// Spawn `workers` (clamped to at least 1) worker threads.
    #[must_use]
    pub fn new(workers: usize) -> Pool {
        let n = workers.max(1);
        let shared = Arc::new(Shared {
            deques: (0..n).map(|_| Mutex::new(VecDeque::new())).collect(),
            idle: Mutex::new(()),
            wake: Condvar::new(),
            shutdown: AtomicBool::new(false),
            in_flight: AtomicUsize::new(0),
            panicked: AtomicU64::new(0),
            steals: AtomicU64::new(0),
        });
        let workers = (0..n)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("cwf-dse-{i}"))
                    .spawn(move || worker_loop(&shared, i))
                    .expect("spawn pool worker")
            })
            .collect();
        Pool { shared, workers, next: AtomicUsize::new(0) }
    }

    /// Enqueue a job. Jobs submitted after [`Pool::shutdown`] are dropped.
    pub fn spawn(&self, job: Job) {
        if self.shared.shutdown.load(Ordering::Acquire) {
            return;
        }
        self.shared.in_flight.fetch_add(1, Ordering::AcqRel);
        let i = self.next.fetch_add(1, Ordering::Relaxed) % self.shared.deques.len();
        self.shared.deques[i].lock().expect("deque poisoned").push_back(job);
        self.shared.wake.notify_one();
    }

    /// Jobs submitted but not yet finished.
    #[must_use]
    pub fn in_flight(&self) -> usize {
        self.shared.in_flight.load(Ordering::Acquire)
    }

    /// Jobs that ended in a panic (caught; the pool kept running).
    #[must_use]
    pub fn panicked(&self) -> u64 {
        self.shared.panicked.load(Ordering::Relaxed)
    }

    /// Jobs executed off a sibling's deque.
    #[must_use]
    pub fn steals(&self) -> u64 {
        self.shared.steals.load(Ordering::Relaxed)
    }

    /// Worker-thread count.
    #[must_use]
    pub fn workers(&self) -> usize {
        self.shared.deques.len()
    }

    /// Stop accepting work, finish jobs already queued, join the workers.
    pub fn shutdown(mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.wake.notify_all();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.wake.notify_all();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

/// Take the next job for worker `me`: own deque front first (LIFO back
/// would starve FIFO fairness across sweeps; front keeps submission
/// order), then steal from siblings.
fn take_job(shared: &Shared, me: usize) -> Option<(Job, bool)> {
    if let Some(job) = shared.deques[me].lock().expect("deque poisoned").pop_front() {
        return Some((job, false));
    }
    let n = shared.deques.len();
    for off in 1..n {
        let victim = (me + off) % n;
        if let Some(job) = shared.deques[victim].lock().expect("deque poisoned").pop_front() {
            return Some((job, true));
        }
    }
    None
}

fn worker_loop(shared: &Shared, me: usize) {
    loop {
        match take_job(shared, me) {
            Some((job, stolen)) => {
                if stolen {
                    shared.steals.fetch_add(1, Ordering::Relaxed);
                }
                // A panicking job must not take the worker down with it.
                if catch_unwind(AssertUnwindSafe(job)).is_err() {
                    shared.panicked.fetch_add(1, Ordering::Relaxed);
                }
                shared.in_flight.fetch_sub(1, Ordering::AcqRel);
            }
            None => {
                if shared.shutdown.load(Ordering::Acquire) {
                    return;
                }
                // Timed wait: a submission between the take attempt and
                // this wait would otherwise be missed forever.
                let guard = shared.idle.lock().expect("idle poisoned");
                let _unused =
                    shared.wake.wait_timeout(guard, Duration::from_millis(20)).expect("idle wait");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    #[test]
    fn executes_every_job_once() {
        let pool = Pool::new(4);
        let counter = Arc::new(AtomicU32::new(0));
        for _ in 0..500 {
            let c = Arc::clone(&counter);
            pool.spawn(Box::new(move || {
                c.fetch_add(1, Ordering::Relaxed);
            }));
        }
        while pool.in_flight() > 0 {
            std::thread::sleep(Duration::from_millis(1));
        }
        assert_eq!(counter.load(Ordering::Relaxed), 500);
        pool.shutdown();
    }

    #[test]
    fn survives_panicking_jobs_and_steals_imbalance() {
        let pool = Pool::new(3);
        let counter = Arc::new(AtomicU32::new(0));
        for i in 0..60 {
            let c = Arc::clone(&counter);
            pool.spawn(Box::new(move || {
                if i % 10 == 0 {
                    panic!("job {i} exploded");
                }
                // Uneven job cost provokes stealing.
                if i % 3 == 0 {
                    std::thread::sleep(Duration::from_millis(5));
                }
                c.fetch_add(1, Ordering::Relaxed);
            }));
        }
        while pool.in_flight() > 0 {
            std::thread::sleep(Duration::from_millis(1));
        }
        assert_eq!(counter.load(Ordering::Relaxed), 54);
        assert_eq!(pool.panicked(), 6);
        pool.shutdown();
    }

    #[test]
    fn shutdown_drains_queued_jobs() {
        let pool = Pool::new(2);
        let counter = Arc::new(AtomicU32::new(0));
        for _ in 0..100 {
            let c = Arc::clone(&counter);
            pool.spawn(Box::new(move || {
                c.fetch_add(1, Ordering::Relaxed);
            }));
        }
        pool.shutdown();
        assert_eq!(counter.load(Ordering::Relaxed), 100);
    }
}
