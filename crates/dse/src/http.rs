//! Hand-rolled HTTP/1.1 server plumbing over [`std::net`].
//!
//! Implements exactly the subset the serve front end needs:
//! request-line and header parsing, `Content-Length` bodies, fixed and
//! chunked responses, and `Connection: close` semantics (every exchange
//! is one connection; the endpoints are coarse enough that keep-alive
//! would buy nothing). No TLS, no compression, no dependencies.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Cap on request bodies (1 MiB): a sweep request is a few hundred
/// bytes; anything larger is a client bug or abuse.
pub const MAX_BODY: usize = 1 << 20;

/// One parsed HTTP request.
#[derive(Debug)]
pub struct Request {
    /// Upper-cased method (`GET`, `POST`, ...).
    pub method: String,
    /// Request path, query string stripped.
    pub path: String,
    /// Body bytes (empty unless `Content-Length` said otherwise).
    pub body: Vec<u8>,
}

/// Read and parse one request. `Ok(None)` means the peer closed without
/// sending one.
///
/// # Errors
///
/// Fails on I/O errors, a malformed request line, or an oversized body.
pub fn read_request(stream: &mut TcpStream) -> std::io::Result<Option<Request>> {
    // A stuck client must not pin the handler thread forever.
    stream.set_read_timeout(Some(Duration::from_secs(10)))?;
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    if reader.read_line(&mut line)? == 0 {
        return Ok(None);
    }
    let mut parts = line.split_whitespace();
    let (method, target) = match (parts.next(), parts.next()) {
        (Some(m), Some(t)) => (m.to_ascii_uppercase(), t.to_owned()),
        _ => {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("malformed request line: {line:?}"),
            ))
        }
    };
    let mut content_length = 0usize;
    loop {
        let mut h = String::new();
        if reader.read_line(&mut h)? == 0 {
            break;
        }
        let h = h.trim_end();
        if h.is_empty() {
            break;
        }
        if let Some((name, value)) = h.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().map_err(|_| {
                    std::io::Error::new(std::io::ErrorKind::InvalidData, "bad Content-Length")
                })?;
            }
        }
    }
    if content_length > MAX_BODY {
        return Err(std::io::Error::new(std::io::ErrorKind::InvalidData, "body too large"));
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;
    let path = target.split('?').next().unwrap_or(&target).to_owned();
    Ok(Some(Request { method, path, body }))
}

/// Write a complete fixed-length response and flush.
///
/// # Errors
///
/// Propagates stream write errors.
pub fn respond(
    stream: &mut TcpStream,
    status: u16,
    reason: &str,
    content_type: &str,
    body: &[u8],
) -> std::io::Result<()> {
    write!(
        stream,
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    )?;
    stream.write_all(body)?;
    stream.flush()
}

/// Shorthand for a JSON 200.
///
/// # Errors
///
/// Propagates stream write errors.
pub fn respond_json(stream: &mut TcpStream, body: &str) -> std::io::Result<()> {
    respond(stream, 200, "OK", "application/json", body.as_bytes())
}

/// Shorthand for a JSON error response.
///
/// # Errors
///
/// Propagates stream write errors.
pub fn respond_error(stream: &mut TcpStream, status: u16, msg: &str) -> std::io::Result<()> {
    let reason = match status {
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        _ => "Internal Server Error",
    };
    let body = format!("{{\"error\": {}}}\n", crate::json::quote(msg));
    respond(stream, status, reason, "application/json", body.as_bytes())
}

/// A chunked (streaming) response in progress. Each [`Chunked::send`]
/// writes one chunk; dropping finishes cleanly if [`Chunked::finish`]
/// was not called (errors ignored at that point).
pub struct Chunked<'a> {
    stream: &'a mut TcpStream,
    done: bool,
}

impl<'a> Chunked<'a> {
    /// Start a chunked `200 OK` with the given content type.
    ///
    /// # Errors
    ///
    /// Propagates stream write errors.
    pub fn start(stream: &'a mut TcpStream, content_type: &str) -> std::io::Result<Chunked<'a>> {
        write!(
            stream,
            "HTTP/1.1 200 OK\r\nContent-Type: {content_type}\r\n\
             Transfer-Encoding: chunked\r\nConnection: close\r\n\r\n"
        )?;
        Ok(Chunked { stream, done: false })
    }

    /// Send one chunk.
    ///
    /// # Errors
    ///
    /// Propagates stream write errors (typically: the client went away).
    pub fn send(&mut self, data: &[u8]) -> std::io::Result<()> {
        if data.is_empty() {
            return Ok(()); // an empty chunk would terminate the stream
        }
        write!(self.stream, "{:x}\r\n", data.len())?;
        self.stream.write_all(data)?;
        self.stream.write_all(b"\r\n")?;
        self.stream.flush()
    }

    /// Terminate the stream.
    ///
    /// # Errors
    ///
    /// Propagates stream write errors.
    pub fn finish(mut self) -> std::io::Result<()> {
        self.done = true;
        self.stream.write_all(b"0\r\n\r\n")?;
        self.stream.flush()
    }
}

impl Drop for Chunked<'_> {
    fn drop(&mut self) {
        if !self.done {
            let _ = self.stream.write_all(b"0\r\n\r\n");
            let _ = self.stream.flush();
        }
    }
}

/// Minimal blocking HTTP client for tests, the CI smoke job, and the
/// serve-throughput experiment: one request per connection, reads the
/// whole response (fixed or chunked) and returns `(status, body)`.
///
/// # Errors
///
/// Fails on connection or protocol errors.
pub fn client_request(
    addr: std::net::SocketAddr,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> std::io::Result<(u16, String)> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(60)))?;
    let body = body.unwrap_or("");
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: cwfmem\r\nContent-Length: {}\r\n\
         Connection: close\r\n\r\n{body}",
        body.len()
    )?;
    stream.flush()?;
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw)?;
    let text = String::from_utf8_lossy(&raw);
    let (head, rest) = text
        .split_once("\r\n\r\n")
        .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidData, "no header end"))?;
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidData, "no status"))?;
    let chunked = head
        .lines()
        .any(|l| l.to_ascii_lowercase().starts_with("transfer-encoding") && l.contains("chunked"));
    let payload = if chunked { decode_chunked(rest) } else { rest.to_owned() };
    Ok((status, payload))
}

/// Reassemble a chunked body (sizes are hex, one chunk per line pair).
fn decode_chunked(raw: &str) -> String {
    let mut out = String::new();
    let mut rest = raw;
    while let Some((size_line, tail)) = rest.split_once("\r\n") {
        let Ok(size) = usize::from_str_radix(size_line.trim(), 16) else { break };
        if size == 0 || tail.len() < size {
            break;
        }
        out.push_str(&tail[..size]);
        rest = tail[size..].strip_prefix("\r\n").unwrap_or("");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    #[test]
    fn request_response_round_trip() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            let req = read_request(&mut stream).unwrap().unwrap();
            assert_eq!(req.method, "POST");
            assert_eq!(req.path, "/sweep");
            assert_eq!(req.body, b"{\"x\":1}");
            respond_json(&mut stream, "{\"ok\": true}\n").unwrap();
        });
        let (status, body) = client_request(addr, "POST", "/sweep?v=1", Some("{\"x\":1}")).unwrap();
        assert_eq!(status, 200);
        assert_eq!(body, "{\"ok\": true}\n");
        server.join().unwrap();
    }

    #[test]
    fn chunked_round_trip() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            let _ = read_request(&mut stream).unwrap().unwrap();
            let mut ch = Chunked::start(&mut stream, "application/x-ndjson").unwrap();
            ch.send(b"{\"done\": 1}\n").unwrap();
            ch.send(b"{\"done\": 2}\n").unwrap();
            ch.finish().unwrap();
        });
        let (status, body) = client_request(addr, "GET", "/stream", None).unwrap();
        assert_eq!(status, 200);
        assert_eq!(body, "{\"done\": 1}\n{\"done\": 2}\n");
        server.join().unwrap();
    }

    #[test]
    fn error_shapes() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            let _ = read_request(&mut stream).unwrap();
            respond_error(&mut stream, 404, "no such sweep").unwrap();
        });
        let (status, body) = client_request(addr, "GET", "/sweep/99", None).unwrap();
        assert_eq!(status, 404);
        assert!(body.contains("no such sweep"));
        server.join().unwrap();
    }
}
