//! Minimal JSON layer for the serve front end: a recursive-descent
//! parser for request bodies and emit helpers matching the style of
//! `sim_harness::report` (hand-rolled, no dependencies). Objects keep
//! insertion order (a vector of pairs), so rendering is deterministic.

use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (JSON does not distinguish integer kinds).
    Num(f64),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parse a complete JSON document.
    ///
    /// # Errors
    ///
    /// Fails with a position-annotated message on malformed input or
    /// trailing bytes.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let v = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing bytes at offset {pos}"));
        }
        Ok(v)
    }

    /// Object member by key (`None` for absent keys or non-objects).
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload as an integer, if this is a whole number.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => Some(*n as u64),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element vector, if this is an array.
    #[must_use]
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at offset {pos}", char::from(c)))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".to_owned()),
        Some(b'n') => parse_lit(b, pos, "null", Json::Null),
        Some(b't') => parse_lit(b, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Json::Bool(false)),
        Some(b'"') => Ok(Json::Str(parse_string(b, pos)?)),
        Some(b'[') => {
            *pos += 1;
            let mut out = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(out));
            }
            loop {
                out.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(out));
                    }
                    _ => return Err(format!("expected ',' or ']' at offset {pos}")),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut out = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(out));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                skip_ws(b, pos);
                expect(b, pos, b':')?;
                let val = parse_value(b, pos)?;
                out.push((key, val));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(out));
                    }
                    _ => return Err(format!("expected ',' or '}}' at offset {pos}")),
                }
            }
        }
        Some(_) => parse_number(b, pos),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: Json) -> Result<Json, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(format!("invalid literal at offset {pos}"))
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-') {
        *pos += 1;
    }
    let text = std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?;
    text.parse::<f64>().map(Json::Num).map_err(|_| format!("invalid number at offset {start}"))
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".to_owned()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| "truncated \\u escape".to_owned())?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                            16,
                        )
                        .map_err(|e| e.to_string())?;
                        // Surrogates degrade to the replacement character;
                        // the serve API never emits them.
                        out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at offset {pos}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (multi-byte sequences pass
                // through verbatim; the input is a &str so it is valid).
                let s = &b[*pos..];
                let ch_len = match s[0] {
                    0x00..=0x7F => 1,
                    0xC0..=0xDF => 2,
                    0xE0..=0xEF => 3,
                    _ => 4,
                };
                out.push_str(std::str::from_utf8(&s[..ch_len]).map_err(|e| e.to_string())?);
                *pos += ch_len;
            }
        }
    }
}

/// Escape a string for embedding in a JSON document (adds the quotes).
#[must_use]
pub fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_sweep_request_shape() {
        let v = Json::parse(
            r#"{"benches": ["mcf", "stream"], "kinds": ["rl"], "reads": 500, "quick": true}"#,
        )
        .unwrap();
        assert_eq!(v.get("reads").and_then(Json::as_u64), Some(500));
        assert_eq!(v.get("quick").and_then(Json::as_bool), Some(true));
        let benches = v.get("benches").and_then(Json::as_arr).unwrap();
        assert_eq!(benches[1].as_str(), Some("stream"));
        assert!(v.get("missing").is_none());
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("{}extra").is_err());
        assert!(Json::parse("\"unterminated").is_err());
        assert!(Json::parse("nul").is_err());
    }

    #[test]
    fn strings_round_trip_escapes() {
        let v = Json::parse(r#""a\"b\\c\ndA""#).unwrap();
        assert_eq!(v.as_str(), Some("a\"b\\c\ndA"));
        assert_eq!(quote("a\"b\\c\nd"), r#""a\"b\\c\nd""#);
        let v = Json::parse("\"héllo\"").unwrap();
        assert_eq!(v.as_str(), Some("héllo"));
    }

    #[test]
    fn numbers_parse() {
        assert_eq!(Json::parse("42").unwrap().as_u64(), Some(42));
        assert_eq!(Json::parse("-1").unwrap().as_u64(), None);
        assert_eq!(Json::parse("1.5").unwrap().as_u64(), None);
        assert!(Json::parse("1e3").unwrap().as_u64() == Some(1000));
    }
}
