//! Stable configuration digests for result-cache keying.
//!
//! A sweep cell's identity is `(config-digest, seed)`: the digest covers
//! the benchmark name plus every [`RunConfig`] knob *except* the seed
//! (which travels alongside, so seed sweeps share one digest), hashed
//! with the same FNV-1a/SplitMix64 construction as
//! [`sim_harness::sweep::cell_seed`]. The config is canonicalized
//! through its `cwfmem.ckpt.v1` encoding — a byte stream that is already
//! pinned forever by the checkpoint format — so the digest is stable
//! across platforms, releases, and field reorderings that keep the
//! encoding fixed. Golden tests below pin the values.

use cwf_ckpt::Ckpt;
use sim_harness::sweep::Cell;
use sim_harness::RunConfig;

/// FNV-1a offset basis (64-bit).
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a prime (64-bit).
const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;

/// Identity of one sweep cell in the result cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct CellKey {
    /// [`config_digest`] of the cell's benchmark + seedless config.
    pub digest: u64,
    /// The cell's workload/backend seed.
    pub seed: u64,
}

/// FNV-1a over `bytes`, continuing from `h`.
fn fnv1a(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// SplitMix64 finalizer: spreads the FNV bits over the whole word.
fn finalize(mut h: u64) -> u64 {
    h = (h ^ (h >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    h = (h ^ (h >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    h ^ (h >> 31)
}

/// Digest of a benchmark + configuration, seed excluded. Stable forever:
/// changing it invalidates every persisted cache and the golden test.
#[must_use]
pub fn config_digest(bench: &str, cfg: &RunConfig) -> u64 {
    let mut canonical = *cfg;
    canonical.seed = 0;
    let mut w = cwf_ckpt::Writer::new();
    canonical.save(&mut w);
    let mut h = fnv1a(FNV_OFFSET, bench.as_bytes());
    // Separator that no benchmark name contains, so ("ab", cfg-bytes)
    // never collides with ("a", b+cfg-bytes).
    h = fnv1a(h, &[0xFF]);
    h = fnv1a(h, &w.into_vec());
    finalize(h)
}

/// The cache key of one sweep cell.
#[must_use]
pub fn cell_key(cell: &Cell) -> CellKey {
    CellKey { digest: config_digest(&cell.bench, &cell.cfg), seed: cell.cfg.seed }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_harness::config::MemKind;

    #[test]
    fn digest_ignores_seed_only() {
        let a = RunConfig::paper(MemKind::Rl, 1_000);
        let mut b = a;
        b.seed ^= 0xDEAD_BEEF;
        assert_eq!(config_digest("mcf", &a), config_digest("mcf", &b));
        let mut c = a;
        c.cores = 4;
        assert_ne!(config_digest("mcf", &a), config_digest("mcf", &c));
        assert_ne!(config_digest("mcf", &a), config_digest("stream", &a));
    }

    #[test]
    fn keys_differ_by_seed() {
        let cfg = RunConfig::quick(MemKind::Ddr3, 100);
        let mut cfg2 = cfg;
        cfg2.seed += 1;
        let a = cell_key(&Cell { bench: "mcf".into(), cfg });
        let b = cell_key(&Cell { bench: "mcf".into(), cfg: cfg2 });
        assert_eq!(a.digest, b.digest);
        assert_ne!(a.seed, b.seed);
        assert_ne!(a, b);
    }
}
