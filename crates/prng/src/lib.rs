#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! Vendored deterministic PRNG exposing the subset of the `rand` crate
//! API this workspace uses (`StdRng`, [`SeedableRng`], [`RngExt`]).
//!
//! The build environment has no access to crates.io, so the workspace
//! dependency `rand` is path-renamed to this crate (see the root
//! `Cargo.toml`). The generator is xoshiro256++ seeded through
//! SplitMix64 — the standard construction recommended by Blackman &
//! Vigna — which is statistically strong, fast, and, critically for the
//! sweep harness, **stable across platforms and releases**: the same
//! seed always yields the same stream, so golden files and the
//! parallel-sweep determinism contract (DESIGN.md §8) hold forever.
//!
//! Not cryptographically secure; simulation use only.
//!
//! # Examples
//!
//! (Downstream crates import this under the name `rand`; the doctest
//! uses the real package name.)
//!
//! ```
//! use cwf_rand::rngs::StdRng;
//! use cwf_rand::{RngExt, SeedableRng};
//!
//! let mut a = StdRng::seed_from_u64(7);
//! let mut b = StdRng::seed_from_u64(7);
//! assert_eq!(a.random::<u64>(), b.random::<u64>());
//! assert!((0.0..1.0).contains(&a.random::<f64>()));
//! assert!((10..20).contains(&a.random_range(10u32..20)));
//! ```

/// Deterministic random-number generators.
pub mod rngs {
    /// The workspace's standard RNG: xoshiro256++ with SplitMix64 seeding.
    ///
    /// Unlike `rand::rngs::StdRng`, the output stream is guaranteed
    /// stable across versions of this crate.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        pub(crate) fn from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the 64-bit seed into 256 bits of
            // state (never all-zero: splitmix output of any seed is fine).
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng { s: [next(), next(), next(), next()] }
        }

        /// Next raw 64-bit output (xoshiro256++).
        #[inline]
        pub fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }

        /// Next `f64` uniform in `[0, 1)` (53 mantissa bits).
        #[inline]
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Snapshot the raw 256-bit generator state (for checkpointing).
        #[must_use]
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuild a generator from a [`StdRng::state`] snapshot. The
        /// restored generator continues the original stream exactly.
        #[must_use]
        pub fn from_state(s: [u64; 4]) -> Self {
            StdRng { s }
        }
    }
}

/// Seeding constructor, mirroring `rand::SeedableRng` for the one entry
/// point the workspace uses.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for rngs::StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        rngs::StdRng::from_u64(seed)
    }
}

/// Types that can be sampled uniformly from an RNG (the `rand`
/// "standard distribution").
pub trait Standard: Sized {
    /// Draw one value.
    fn sample(rng: &mut rngs::StdRng) -> Self;
}

impl Standard for u64 {
    fn sample(rng: &mut rngs::StdRng) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample(rng: &mut rngs::StdRng) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for f64 {
    fn sample(rng: &mut rngs::StdRng) -> Self {
        rng.next_f64()
    }
}

impl Standard for bool {
    fn sample(rng: &mut rngs::StdRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that can be sampled uniformly (`a..b` and `a..=b` over the
/// integer types the workspace draws from).
pub trait SampleRange {
    /// Element type produced.
    type Output;
    /// Draw one value from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty, matching `rand`'s contract.
    fn sample(self, rng: &mut rngs::StdRng) -> Self::Output;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            fn sample(self, rng: &mut rngs::StdRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange for core::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample(self, rng: &mut rngs::StdRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64 + 1;
                if span == 0 {
                    // Full-width u64 range: every value is valid.
                    return lo + rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize);

/// Convenience sampling methods, mirroring the `rand 0.9+` `Rng` API
/// (`random`, `random_range`, `random_bool`).
pub trait RngExt {
    /// Sample a value of type `T` from the standard distribution.
    fn random<T: Standard>(&mut self) -> T;
    /// Sample uniformly from `range`.
    fn random_range<R: SampleRange>(&mut self, range: R) -> R::Output;
    /// Bernoulli trial: `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn random_bool(&mut self, p: f64) -> bool;
}

impl RngExt for rngs::StdRng {
    fn random<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    fn random_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample(self)
    }

    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} outside [0, 1]");
        self.next_f64() < p
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(0xD2A4_0001);
        let mut b = StdRng::seed_from_u64(0xD2A4_0001);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn stream_is_pinned_forever() {
        // Golden values: if this test fails, the generator changed and
        // every golden file in the repo is invalidated. Do not update
        // these numbers casually.
        let mut r = StdRng::seed_from_u64(42);
        let first: Vec<u64> = (0..4).map(|_| r.next_u64()).collect();
        assert_eq!(
            first,
            vec![
                15_021_278_609_987_233_951,
                5_881_210_131_331_364_753,
                18_149_643_915_985_481_100,
                12_933_668_939_759_105_464,
            ]
        );
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1_000 {
            let x = r.random_range(10u64..20);
            assert!((10..20).contains(&x));
            let y = r.random_range(3u32..=5);
            assert!((3..=5).contains(&y));
            let f: f64 = r.random();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn random_bool_extremes() {
        let mut r = StdRng::seed_from_u64(9);
        assert!(!(0..100).any(|_| r.random_bool(0.0)));
        assert!((0..100).all(|_| r.random_bool(1.0)));
    }

    #[test]
    fn uniformity_rough_check() {
        let mut r = StdRng::seed_from_u64(11);
        let n = 100_000;
        let mean = (0..n).map(|_| r.next_f64()).sum::<f64>() / f64::from(n);
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn state_snapshot_resumes_stream() {
        let mut a = StdRng::seed_from_u64(1234);
        for _ in 0..17 {
            a.next_u64();
        }
        let mut b = StdRng::from_state(a.state());
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut r = StdRng::seed_from_u64(1);
        let _ = r.random_range(5u32..5);
    }
}
