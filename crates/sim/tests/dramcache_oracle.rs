//! DRAM-cache oracle tests: the clean-run matrix for the hybrid backend
//! (both kernels, byte-identical metric documents) and the seeded-fault
//! proofs for the three cache-consistency rules — each planted bug must be
//! caught by exactly the checker designed for it.

use cwf_core::{DramCacheConfig, DramCacheMemory};
use cwf_verify::{Oracle, OracleRule};
use dram_timing::DeviceKind;
use mem_ctrl::{LineRequest, MainMemory};
use sim_harness::config::MemKind;
use sim_harness::report::to_json;
use sim_harness::{run_benchmark_diag, run_benchmark_verified, Kernel, RunConfig};

/// Drive `mem` over `[from, to)` CPU cycles, feeding every drained event
/// and audit record to the oracle (the same plumbing `System` uses).
fn run_span(mem: &mut DramCacheMemory, oracle: &mut Oracle, from: u64, to: u64) {
    let mut ev = Vec::new();
    for now in from..to {
        mem.tick(now);
        ev.clear();
        mem.drain_events(now, &mut ev);
        for e in &ev {
            oracle.observe_event(e, now);
        }
    }
    let mut recs = Vec::new();
    mem.drain_audit(&mut recs);
    oracle.observe_records(&recs);
}

fn submit_read(mem: &mut DramCacheMemory, oracle: &mut Oracle, addr: u64, now: u64) {
    let tok = mem
        .try_submit(&LineRequest::demand_read(addr, 0, 0), now)
        .expect("queue space")
        .expect("reads get tokens");
    oracle.observe_submit(tok, now);
}

/// A tiny direct-mapped cache (2 sets x 1 way) makes conflict evictions
/// deterministic for the fault scenarios.
fn tiny() -> DramCacheMemory {
    DramCacheMemory::new(
        DramCacheConfig::pair(DeviceKind::Rldram3, DeviceKind::NvmSlow).with_geometry(2, 1),
    )
}

const SPAN: u64 = 20_000;

#[test]
fn healthy_dram_cache_is_oracle_clean() {
    let mut mem = tiny();
    mem.enable_audit();
    let mut oracle = Oracle::new(mem.audit_channels());
    // Miss + fill, hit, dirty write, conflict eviction with writeback.
    submit_read(&mut mem, &mut oracle, 0, 0);
    run_span(&mut mem, &mut oracle, 0, SPAN);
    submit_read(&mut mem, &mut oracle, 0, SPAN);
    run_span(&mut mem, &mut oracle, SPAN, 2 * SPAN);
    assert!(mem.try_submit(&LineRequest::writeback(0, 0, 0), 2 * SPAN).is_ok());
    run_span(&mut mem, &mut oracle, 2 * SPAN, 3 * SPAN);
    submit_read(&mut mem, &mut oracle, 2 * 64, 3 * SPAN);
    run_span(&mut mem, &mut oracle, 3 * SPAN, 4 * SPAN);
    assert_eq!(mem.dramcache_stats().writebacks, 1, "scenario must evict dirty data");

    oracle.finalize(4 * SPAN);
    let report = oracle.report();
    assert!(report.is_clean(), "{:?}", report.violations);
}

#[test]
fn fake_probe_hit_is_caught_by_the_tag_checker() {
    let mut mem = tiny();
    mem.enable_audit();
    let mut oracle = Oracle::new(mem.audit_channels());
    mem.inject_fake_hit();
    submit_read(&mut mem, &mut oracle, 0x8000, 0);
    run_span(&mut mem, &mut oracle, 0, SPAN);

    oracle.finalize(SPAN);
    let report = oracle.report();
    assert!(!report.is_clean(), "a fabricated tag hit must be detected");
    assert!(
        report.violations.iter().all(|v| v.rule == OracleRule::CacheTagMismatch),
        "only the tag checker should fire: {:?}",
        report.violations
    );
}

#[test]
fn double_fill_is_caught_by_the_fill_rule() {
    let mut mem = tiny();
    mem.enable_audit();
    let mut oracle = Oracle::new(mem.audit_channels());
    mem.inject_double_fill();
    submit_read(&mut mem, &mut oracle, 0x8000, 0);
    run_span(&mut mem, &mut oracle, 0, SPAN);

    oracle.finalize(SPAN);
    let report = oracle.report();
    assert!(!report.is_clean(), "a duplicated miss fill must be detected");
    assert!(
        report.violations.iter().all(|v| v.rule == OracleRule::CacheDoubleFill),
        "only the exactly-once-fill rule should fire: {:?}",
        report.violations
    );
}

#[test]
fn dropped_writeback_is_caught_by_the_eviction_rule() {
    let mut mem = tiny();
    mem.enable_audit();
    let mut oracle = Oracle::new(mem.audit_channels());
    // Fill line 0 and dirty it.
    submit_read(&mut mem, &mut oracle, 0, 0);
    run_span(&mut mem, &mut oracle, 0, SPAN);
    assert!(mem.try_submit(&LineRequest::writeback(0, 0, 0), SPAN).is_ok());
    run_span(&mut mem, &mut oracle, SPAN, 2 * SPAN);
    // Conflict-evict it with the writeback suppressed.
    mem.inject_drop_writeback();
    submit_read(&mut mem, &mut oracle, 2 * 64, 2 * SPAN);
    run_span(&mut mem, &mut oracle, 2 * SPAN, 3 * SPAN);

    oracle.finalize(3 * SPAN);
    let report = oracle.report();
    assert!(!report.is_clean(), "a dropped dirty writeback must be detected");
    assert!(
        report.violations.iter().all(|v| v.rule == OracleRule::CacheWritebackLost),
        "only the writeback-before-evict rule should fire: {:?}",
        report.violations
    );
}

/// Full-system matrix: the DRAM-cache backend runs oracle-clean under
/// both kernels, and the serialized metric documents agree byte for byte
/// between cycle and event — with and without the oracle watching.
#[test]
fn dramcache_full_system_is_clean_and_kernel_identical() {
    let kind = MemKind::DramCache(DeviceKind::Rldram3, DeviceKind::NvmSlow);
    for bench in ["stream", "mcf"] {
        let mut cycle_cfg = RunConfig::quick(kind, 300);
        cycle_cfg.kernel = Kernel::Cycle;
        cycle_cfg.verify = true;
        let mut event_cfg = cycle_cfg;
        event_cfg.kernel = Kernel::Event;

        let (mc, kc, rc) = run_benchmark_verified(&cycle_cfg, bench);
        let (me, _ke, re) = run_benchmark_verified(&event_cfg, bench);
        for (kernel, report) in [("cycle", rc), ("event", re)] {
            let report = report.expect("verify was enabled");
            assert!(report.is_clean(), "{bench}/{kernel}: {:?}", report.violations);
            assert!(report.commands_checked > 0);
            assert!(report.fills_completed > 0);
        }
        assert_eq!(
            to_json(&mc),
            to_json(&me),
            "{bench}: event kernel diverged from cycle kernel on the DRAM cache"
        );

        // The oracle is an observer: same bytes with verification off.
        let mut off = cycle_cfg;
        off.verify = false;
        let (m_off, k_off) = run_benchmark_diag(&off, bench);
        assert_eq!(to_json(&mc), to_json(&m_off), "{bench}: oracle perturbed the simulation");
        assert_eq!(kc, k_off, "{bench}: kernel behaviour changed under the oracle");
    }
}
