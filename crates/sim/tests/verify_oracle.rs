//! End-to-end verify-oracle tests: the clean-run matrix (the oracle is a
//! pure observer with zero findings on healthy configurations) and the
//! kernel-level seeded fault (an optimistic `next_activity` bound must be
//! caught as a skipped deadline).

use dram_timing::DeviceKind;
use sim_harness::config::MemKind;
use sim_harness::report::to_json;
use sim_harness::{run_benchmark_diag, run_benchmark_verified, Kernel, RunConfig, System};

/// Three benches x six organizations (the legacy trio plus spec-layer
/// DDR5/LPDDR4 and a heterogeneous DDR5 CWF pairing): every run under the
/// oracle is violation-free, and the metrics — down to the serialized byte
/// — match the same run with verification off.
#[test]
fn clean_runs_are_violation_free_and_metric_identical() {
    for bench in ["stream", "mcf", "libquantum"] {
        for kind in [
            MemKind::Ddr3,
            MemKind::Rl,
            MemKind::Lpddr2,
            MemKind::Spec(DeviceKind::Ddr5),
            MemKind::Spec(DeviceKind::Lpddr4),
            MemKind::SpecCwf(DeviceKind::Rldram3, DeviceKind::Ddr5),
        ] {
            let mut on = RunConfig::quick(kind, 400);
            on.verify = true;
            let mut off = on;
            off.verify = false;

            let (m_on, k_on, report) = run_benchmark_verified(&on, bench);
            let (m_off, k_off) = run_benchmark_diag(&off, bench);

            let report = report.expect("verify was enabled");
            assert!(report.is_clean(), "{bench}/{}: {:?}", kind.label(), report.violations);
            assert!(report.commands_checked > 0, "oracle saw no DRAM commands");
            assert!(report.events_checked > 0, "oracle saw no memory events");
            assert!(report.fills_completed > 0, "oracle retired no fills");
            assert_eq!(
                to_json(&m_on),
                to_json(&m_off),
                "{bench}/{}: oracle perturbed the simulation",
                kind.label()
            );
            assert_eq!(k_on, k_off, "{bench}/{}: kernel behaviour changed", kind.label());
        }
    }
}

/// Fault (d): the event kernel trusts a `next_activity` bound larger than
/// the backend's true one, so memory events fire inside "skipped" quiet
/// periods. Only the skip monitor can see this — timestamps, tokens and
/// per-channel command streams all stay self-consistent.
#[test]
fn optimistic_wake_bound_is_caught_by_the_skip_monitor() {
    let mut cfg = RunConfig::quick(MemKind::Rl, 300);
    cfg.verify = true;
    cfg.kernel = Kernel::Event;
    let profile = workloads::by_name("mcf").expect("known bench");
    let mut sys = System::new(&cfg, profile);
    sys.inject_optimistic_wake(64);
    let _ = sys.run();

    let report = sys.verify_report().expect("verify was enabled");
    assert!(!report.is_clean(), "an over-reported quiet period must be detected");
    assert!(
        report.violations.iter().all(|v| v.rule == cwf_verify::OracleRule::SkipMissedDeadline),
        "only the skip monitor should fire: {:?}",
        report.violations
    );
}

/// Fault (e): the kernel trusts core front-end activity bounds larger
/// than the cores' true ones, so batched spans run into cycles that
/// needed the instruction trace. Only the span audit can see this — the
/// memory side's timestamps and command streams stay self-consistent.
#[test]
fn optimistic_core_horizon_is_caught_by_the_span_audit() {
    let mut cfg = RunConfig::quick(MemKind::Rl, 300);
    cfg.verify = true;
    cfg.kernel = Kernel::Event;
    let profile = workloads::by_name("mcf").expect("known bench");
    let mut sys = System::new(&cfg, profile);
    sys.inject_optimistic_horizon(16);
    let _ = sys.run();

    let report = sys.verify_report().expect("verify was enabled");
    assert!(!report.is_clean(), "an over-reported core horizon must be detected");
    assert!(
        report.violations.iter().any(|v| v.rule == cwf_verify::OracleRule::SpanOverrun),
        "the span audit should fire: {:?}",
        report.violations
    );
}

/// The same system without the fault knobs is clean under the event kernel
/// — the skip monitor's and span audit's checks are exact, not merely
/// "skips/spans happened".
#[test]
fn sound_event_kernel_is_clean_under_the_skip_monitor() {
    let mut cfg = RunConfig::quick(MemKind::Rl, 300);
    cfg.verify = true;
    cfg.kernel = Kernel::Event;
    let profile = workloads::by_name("mcf").expect("known bench");
    let mut sys = System::new(&cfg, profile);
    let _ = sys.run();
    let report = sys.verify_report().expect("verify was enabled");
    assert!(report.is_clean(), "{:?}", report.violations);
    assert!(report.skips > 0, "the event kernel should actually skip");
    assert!(report.core_spans > 0, "the span audit should see batched spans");
    assert!(report.core_span_cycles > 0, "audited spans should cover cycles");
}
