//! System-level trace collection ([`Tracer`]) and the end-of-run
//! [`TraceReport`]: Perfetto export plus the latency-waterfall
//! decomposition.
//!
//! The tracer is a pure observer. It drains the instrumentation buffers
//! that every layer fills when tracing is enabled (see
//! [`cwf_tracelog::TraceEvent`]), pushes the events into a fixed-capacity
//! [`TraceRing`] (oldest events drop on overflow — the simulation never
//! stalls or reallocates on behalf of the trace), and converts the
//! backend's audit records into DRAM-level refresh/power events so the
//! trace shows them without a second plumbing path through the
//! controllers.

use cwf_tracelog::{
    waterfall, ReadWaterfall, TraceEvent, TraceMeta, TraceRing, WaterfallSummary, STAGE_NAMES,
};
use mem_ctrl::{AuditRecord, ChannelDesc};

use crate::metrics::CPU_HZ;

/// Live trace state carried by a running [`crate::System`].
#[derive(Debug)]
pub(crate) struct Tracer {
    ring: TraceRing,
    /// CPU cycles per device cycle, per audit-channel index (audit
    /// records carry device-local clocks).
    chan_ratio: Vec<u64>,
    meta: TraceMeta,
}

impl Tracer {
    /// Build a tracer for a backend described by `channels` (the
    /// backend's `audit_channels()`, whose indices match the channel
    /// numbers in controller trace events).
    pub(crate) fn new(channels: &[ChannelDesc], cores: u8) -> Self {
        Tracer {
            ring: TraceRing::new(TraceRing::DEFAULT_CAPACITY),
            chan_ratio: channels
                .iter()
                .map(|c| u64::from(c.cfg.cpu_cycles_per_mem_cycle).max(1))
                .collect(),
            meta: TraceMeta {
                cycles_per_us: (CPU_HZ / 1e6) as u64,
                channel_labels: channels.iter().map(|c| c.label.clone()).collect(),
                cores,
            },
        }
    }

    /// Push a batch of already-converted (CPU-cycle) trace events.
    pub(crate) fn absorb_events(&mut self, events: &mut Vec<TraceEvent>) {
        self.ring.extend_from(events);
    }

    /// Convert backend audit records into DRAM-level trace events.
    ///
    /// Only refreshes and power transitions are taken: ACT/PRE/CAS
    /// already arrive as token-tagged controller events, and duplicating
    /// them here would double every command on the timeline.
    pub(crate) fn absorb_audit(&mut self, records: &[AuditRecord]) {
        for r in records {
            match *r {
                AuditRecord::Cmd { channel, at_mem, cmd } => {
                    let rank = match cmd {
                        dram_timing::Command::Refresh { rank }
                        | dram_timing::Command::RefreshBank { rank, .. } => rank,
                        _ => continue,
                    };
                    let ratio = self.chan_ratio.get(channel).copied().unwrap_or(1);
                    self.ring.push(TraceEvent::DramRefresh {
                        channel: channel as u16,
                        at: at_mem * ratio,
                        rank,
                    });
                }
                AuditRecord::Power { channel, at_mem, rank, state } => {
                    let ratio = self.chan_ratio.get(channel).copied().unwrap_or(1);
                    self.ring.push(TraceEvent::DramPower {
                        channel: channel as u16,
                        at: at_mem * ratio,
                        rank,
                        state: match state {
                            dram_timing::PowerState::Up => 0,
                            dram_timing::PowerState::PowerDown => 1,
                            dram_timing::PowerState::SelfRefresh => 2,
                        },
                    });
                }
                // Cache bookkeeping records are the oracle's food; the
                // trace already gets the same story as token-tagged
                // DcTagProbe/DcMissFill events from the backend itself.
                AuditRecord::Cache { .. } => {}
            }
        }
    }

    /// Snapshot the ring into a finished report.
    pub(crate) fn report(&self) -> TraceReport {
        TraceReport::new(self.ring.snapshot(), self.ring.dropped(), self.meta.clone())
    }

    /// Serialize the ring (contents + overflow count). `chan_ratio` and
    /// `meta` derive from the run configuration and are rebuilt on
    /// restore, like every other configured field in the checkpoint.
    pub(crate) fn save_state(&self, w: &mut cwf_ckpt::Writer) {
        use cwf_ckpt::Ckpt;
        self.ring.snapshot().save(w);
        self.ring.dropped().save(w);
    }

    /// Restore a ring saved by [`Tracer::save_state`] into this tracer
    /// (freshly built for the same backend).
    ///
    /// # Errors
    ///
    /// Fails on a malformed event stream.
    pub(crate) fn load_state(&mut self, r: &mut cwf_ckpt::Reader<'_>) -> cwf_ckpt::Result<()> {
        use cwf_ckpt::Ckpt;
        let events: Vec<TraceEvent> = Ckpt::load(r)?;
        let dropped = u64::load(r)?;
        self.ring = TraceRing::from_snapshot(TraceRing::DEFAULT_CAPACITY, events, dropped);
        Ok(())
    }
}

/// Everything the trace subsystem produced for one run.
#[derive(Debug, Clone)]
pub struct TraceReport {
    /// The surviving event log, in ring (arrival) order.
    pub events: Vec<TraceEvent>,
    /// Events the ring dropped (oldest-first) because it was full.
    pub dropped: u64,
    /// Export context (clock rate, channel labels, core count).
    pub meta: TraceMeta,
    /// Per-read latency decompositions, in token order.
    pub waterfalls: Vec<ReadWaterfall>,
    /// Aggregate over [`TraceReport::waterfalls`].
    pub summary: WaterfallSummary,
}

impl TraceReport {
    /// Build a report (runs the waterfall reconstruction).
    #[must_use]
    pub fn new(events: Vec<TraceEvent>, dropped: u64, meta: TraceMeta) -> Self {
        let (waterfalls, summary) = waterfall::build(&events);
        TraceReport { events, dropped, meta, waterfalls, summary }
    }

    /// Render the event log as a Perfetto/Chrome trace-event JSON
    /// document (load it at `ui.perfetto.dev` or `chrome://tracing`).
    #[must_use]
    pub fn perfetto_json(&self) -> String {
        cwf_tracelog::perfetto::export(&self.events, &self.meta)
    }

    /// The `n` slowest decomposed reads.
    #[must_use]
    pub fn top_slowest(&self, n: usize) -> Vec<ReadWaterfall> {
        waterfall::top_slowest(&self.waterfalls, n)
    }

    /// Render the additive `"trace"` object for the run-JSON document
    /// (`indent` is the leading whitespace of the object's lines).
    #[must_use]
    pub fn to_json_object(&self, indent: &str) -> String {
        let s = &self.summary;
        let mut o = String::new();
        o.push_str("{\n");
        o.push_str(&format!("{indent}  \"events\": {},\n", self.events.len()));
        o.push_str(&format!("{indent}  \"dropped_events\": {},\n", self.dropped));
        o.push_str(&format!("{indent}  \"waterfall_reads\": {},\n", s.reads));
        o.push_str(&format!("{indent}  \"waterfall_incomplete\": {},\n", s.incomplete));
        o.push_str(&format!("{indent}  \"total_cycles\": {},\n", s.total_cycles));
        o.push_str(&format!("{indent}  \"stages\": {{"));
        for (i, name) in STAGE_NAMES.iter().enumerate() {
            if i > 0 {
                o.push(',');
            }
            o.push_str(&format!(
                "\n{indent}    \"{name}\": {{ \"sum_cycles\": {}, \"avg_cycles\": {:.6} }}",
                s.stage_sums[i],
                s.avg_stage(i)
            ));
        }
        o.push_str(&format!("\n{indent}  }}"));
        // DRAM-cache stages appear only when the backend emitted them, so
        // documents from the classic backends stay byte-identical.
        let mut probes = 0u64;
        let mut hits = 0u64;
        let mut fills = 0u64;
        let mut misses_filled = 0u64;
        for e in &self.events {
            match *e {
                TraceEvent::DcTagProbe { hit, .. } => {
                    probes += 1;
                    if hit {
                        hits += 1;
                    }
                }
                TraceEvent::DcMissFill { filled, .. } => {
                    fills += 1;
                    if filled {
                        misses_filled += 1;
                    }
                }
                _ => {}
            }
        }
        if probes + fills > 0 {
            o.push_str(&format!(
                ",\n{indent}  \"dramcache\": {{ \"tag_probes\": {probes}, \"probe_hits\": {hits}, \
                 \"miss_fills\": {fills}, \"lines_installed\": {misses_filled} }}"
            ));
        }
        o.push_str(&format!("\n{indent}}}"));
        o
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cwf_tracelog::RequestToken;

    #[test]
    fn tracer_converts_refresh_and_power_audit_records() {
        let desc = ChannelDesc {
            label: "ddr3-ch0".into(),
            cfg: dram_timing::DeviceConfig::ddr3_1600(),
            ranks: 2,
            bus_group: None,
        };
        let ratio = u64::from(desc.cfg.cpu_cycles_per_mem_cycle);
        let mut tr = Tracer::new(&[desc], 2);
        tr.absorb_audit(&[
            AuditRecord::Cmd {
                channel: 0,
                at_mem: 10,
                cmd: dram_timing::Command::Refresh { rank: 1 },
            },
            AuditRecord::Cmd {
                channel: 0,
                at_mem: 11,
                cmd: dram_timing::Command::Precharge { rank: 0, bank: 0 },
            },
            AuditRecord::Power {
                channel: 0,
                at_mem: 20,
                rank: 0,
                state: dram_timing::PowerState::PowerDown,
            },
        ]);
        let rep = tr.report();
        // The precharge is dropped (token-tagged controller events own it).
        assert_eq!(rep.events.len(), 2);
        assert_eq!(rep.events[0], TraceEvent::DramRefresh { channel: 0, at: 10 * ratio, rank: 1 });
        assert_eq!(
            rep.events[1],
            TraceEvent::DramPower { channel: 0, at: 20 * ratio, rank: 0, state: 1 }
        );
    }

    #[test]
    fn report_json_object_is_well_formed() {
        let meta = TraceMeta { cycles_per_us: 3200, channel_labels: vec![], cores: 1 };
        let events = vec![
            TraceEvent::MshrAlloc {
                token: RequestToken(1),
                core: 0,
                at: 100,
                line: 4,
                critical_word: 0,
                demand: true,
            },
            TraceEvent::McEnqueue { token: RequestToken(1), channel: 0, at: 104 },
            TraceEvent::McActivate {
                token: RequestToken(1),
                channel: 0,
                at: 112,
                rank: 0,
                bank: 0,
            },
            TraceEvent::McCas {
                token: RequestToken(1),
                channel: 0,
                at: 140,
                rank: 0,
                bank: 0,
                write: false,
            },
            TraceEvent::McDataEnd { token: RequestToken(1), channel: 0, at: 188, burst_cycles: 16 },
            TraceEvent::WordsArrived {
                token: RequestToken(1),
                at: 188,
                words: 0xFF,
                served_fast: false,
            },
            TraceEvent::FillDone { token: RequestToken(1), at: 188 },
        ];
        let rep = TraceReport::new(events, 3, meta);
        assert_eq!(rep.summary.reads, 1);
        let obj = rep.to_json_object("  ");
        let doc = cwf_tracelog::json::parse(&obj).expect("valid JSON");
        assert_eq!(doc.get("dropped_events").and_then(|v| v.as_f64()), Some(3.0));
        assert_eq!(doc.get("waterfall_reads").and_then(|v| v.as_f64()), Some(1.0));
        assert!(doc.get("stages").and_then(|s| s.get("queue")).is_some());
    }
}
