#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! Full-system simulation harness.
//!
//! Glues the substrates together — cores ([`cpu_model`]), hierarchy
//! ([`cache_hier`]), workloads ([`workloads`]), memory backends
//! ([`mem_ctrl`], [`cwf_core`]) and power ([`dram_power`]) — into the
//! paper's methodology (§5):
//!
//! * 8 cores at 3.2 GHz, warm-up, then measurement until a target number
//!   of DRAM reads (the paper uses 2 M; scale with `CWF_READS`);
//! * system throughput `Σ IPC_shared / IPC_alone`, normalised to the DDR3
//!   baseline for the figures;
//! * Micron-style DRAM power from controller activity, the §6.1.3 system
//!   energy model.
//!
//! [`experiments`] contains one driver per paper figure/table; the
//! `cwf-bench` crate prints them from `cargo bench`.
//!
//! # Examples
//!
//! ```
//! use sim_harness::{run_benchmark, RunConfig};
//! use sim_harness::config::MemKind;
//!
//! let metrics = run_benchmark(&RunConfig::quick(MemKind::Rl, 1_500), "libquantum");
//! assert!(metrics.dram_reads >= 1_500);
//! assert!(metrics.ipc_total() > 0.0);
//! ```

pub mod config;
pub mod experiments;
pub mod metrics;
pub mod report;
pub mod runner;
pub mod sweep;
pub mod system;
pub mod trace;

pub use config::{Kernel, MemKind, RunConfig};
pub use cwf_verify::VerifyReport;
pub use metrics::RunMetrics;
pub use report::Table;
pub use runner::{
    normalized_throughput, resume_benchmark, resume_benchmark_to_cycle, run_benchmark,
    run_benchmark_ckpt, run_benchmark_diag, run_benchmark_traced,
    run_benchmark_traced_with_backend, run_benchmark_verified, weighted_speedup, CkptOutcome,
};
pub use sweep::{Cell, CellResult};
pub use system::{KernelStats, System};
pub use trace::TraceReport;
