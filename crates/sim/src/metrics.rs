//! End-of-run metrics.

use cache_hier::HierStats;
use cwf_core::CwfStats;
use dram_power::{channel_power, LpddrIo, PowerBreakdown};
use dram_timing::DeviceKind;
use mem_ctrl::MemSystemStats;

use crate::config::MemKind;

/// CPU frequency of the simulated platform (Table 1).
pub const CPU_HZ: f64 = 3.2e9;

/// Everything measured by one simulation run.
#[derive(Debug, Clone)]
pub struct RunMetrics {
    /// Benchmark name.
    pub bench: String,
    /// Memory organization.
    pub mem: MemKind,
    /// Measured CPU cycles (after warm-up).
    pub cycles: u64,
    /// Per-core instructions retired.
    pub insts_per_core: Vec<u64>,
    /// Demand DRAM reads during measurement.
    pub dram_reads: u64,
    /// DRAM writes during measurement.
    pub dram_writes: u64,
    /// Hierarchy statistics (measured window).
    pub hier: HierStats,
    /// Memory-controller statistics (measured window).
    pub mem_stats: MemSystemStats,
    /// CWF statistics, if the backend was a CWF organization.
    pub cwf: Option<CwfStats>,
}

impl RunMetrics {
    /// Aggregate IPC over all cores.
    #[must_use]
    pub fn ipc_total(&self) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        self.insts_per_core.iter().sum::<u64>() as f64 / self.cycles as f64
    }

    /// Per-core IPC values.
    #[must_use]
    pub fn ipc_per_core(&self) -> Vec<f64> {
        self.insts_per_core
            .iter()
            .map(|&i| if self.cycles == 0 { 0.0 } else { i as f64 / self.cycles as f64 })
            .collect()
    }

    /// Measured wall-clock seconds of simulated execution.
    #[must_use]
    pub fn seconds(&self) -> f64 {
        self.cycles as f64 / CPU_HZ
    }

    /// Mean DRAM read latency (queue + service) in nanoseconds.
    #[must_use]
    pub fn avg_read_latency_ns(&self) -> f64 {
        self.mem_stats.avg_queue_ns() + self.mem_stats.avg_service_ns()
    }

    /// Mean critical-word latency in nanoseconds (MSHR allocation to the
    /// cycle the requested word is usable) — Figure 7's metric.
    #[must_use]
    pub fn avg_cw_latency_ns(&self) -> f64 {
        self.hier.avg_cw_latency() / CPU_HZ * 1e9
    }

    /// Critical-word latency at quantile `q` (e.g. `0.5`, `0.95`,
    /// `0.99`), in nanoseconds. Tail companion to
    /// [`RunMetrics::avg_cw_latency_ns`]; bucketed with ~25% relative
    /// resolution (see `dram_timing::stats::LatencyHist`).
    #[must_use]
    pub fn cw_latency_ns_quantile(&self, q: f64) -> f64 {
        self.hier.cw_lat_hist.quantile(q) as f64 / CPU_HZ * 1e9
    }

    /// End-to-end DRAM read latency (enqueue to last data beat) at
    /// quantile `q`, in nanoseconds, merged over all channels.
    #[must_use]
    pub fn read_latency_ns_quantile(&self, q: f64) -> f64 {
        self.mem_stats.read_lat_hist().quantile(q) as f64
    }

    /// Combined data-bus utilization across the bulk (slow) channels.
    #[must_use]
    pub fn bus_utilization(&self) -> f64 {
        let mut busy = 0u64;
        let mut total = 0u64;
        for c in &self.mem_stats.controllers {
            busy += c.channel.read_bus_cycles + c.channel.write_bus_cycles;
            total += c.mem_cycles;
        }
        if total == 0 {
            0.0
        } else {
            busy as f64 / total as f64
        }
    }

    /// Row-buffer hit rate over all channels.
    #[must_use]
    pub fn row_hit_rate(&self) -> f64 {
        let (hits, cols) = self.mem_stats.controllers.iter().fold((0u64, 0u64), |(h, c), s| {
            (h + s.channel.row_hits, c + s.channel.reads + s.channel.writes)
        });
        if cols == 0 {
            0.0
        } else {
            hits as f64 / cols as f64
        }
    }

    /// Total DRAM power in watts under the given LPDDR2 I/O assumption.
    #[must_use]
    pub fn dram_power_w(&self, lpddr_io: LpddrIo) -> f64 {
        self.dram_power_breakdown(lpddr_io).total_w()
    }

    /// DRAM power decomposed by component, summed over channels.
    #[must_use]
    pub fn dram_power_breakdown(&self, lpddr_io: LpddrIo) -> PowerBreakdown {
        let mut total = PowerBreakdown::default();
        for c in &self.mem_stats.controllers {
            total.add(&channel_power(c, lpddr_io));
        }
        total
    }

    /// DRAM power of one device kind only (energy analyses).
    #[must_use]
    pub fn dram_power_of_kind_w(&self, kind: DeviceKind, lpddr_io: LpddrIo) -> f64 {
        self.mem_stats
            .controllers
            .iter()
            .filter(|c| c.kind == kind)
            .map(|c| channel_power(c, lpddr_io).total_w())
            .sum()
    }

    /// DRAM energy in joules over the measured window.
    #[must_use]
    pub fn dram_energy_j(&self, lpddr_io: LpddrIo) -> f64 {
        self.dram_power_w(lpddr_io) * self.seconds()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn metrics(cycles: u64, insts: Vec<u64>) -> RunMetrics {
        RunMetrics {
            bench: "test".into(),
            mem: MemKind::Ddr3,
            cycles,
            insts_per_core: insts,
            dram_reads: 0,
            dram_writes: 0,
            hier: HierStats::default(),
            mem_stats: MemSystemStats::default(),
            cwf: None,
        }
    }

    #[test]
    fn ipc_math() {
        let m = metrics(1_000, vec![2_000, 1_000]);
        assert!((m.ipc_total() - 3.0).abs() < 1e-12);
        assert_eq!(m.ipc_per_core(), vec![2.0, 1.0]);
    }

    #[test]
    fn zero_cycles_is_safe() {
        let m = metrics(0, vec![10]);
        assert_eq!(m.ipc_total(), 0.0);
        assert_eq!(m.bus_utilization(), 0.0);
        assert_eq!(m.row_hit_rate(), 0.0);
    }

    #[test]
    fn seconds_at_cpu_frequency() {
        let m = metrics(3_200_000, vec![1]);
        assert!((m.seconds() - 0.001).abs() < 1e-9);
    }
}
