//! One driver per paper figure/table (see DESIGN.md §5 for the index).
//!
//! Every driver returns [`Table`]s that the `cwf-bench` harness prints.
//! Workload size is the caller's `reads` parameter (the paper runs 2 M
//! DRAM reads; the default harness uses a scaled-down value, which
//! preserves orderings because the generators are stationary).

use std::collections::BTreeMap;

use cache_hier::{Cache, CacheCfg, LineMeta};
use cpu_model::{TraceOp, TraceSource};
use cwf_core::{hot_pages, CwfConfig, HeteroCwfMemory, PagePlacedMemory, ProfilingMemory};
use dram_power::{power_at_utilization, IddTable, LpddrIo, SystemEnergyModel};
use dram_timing::{DeviceConfig, DeviceKind};
use mem_ctrl::HomogeneousMemory;
use workloads::{by_name, suite, TraceGen};

use crate::config::{MemBackend, MemKind, RunConfig};
use crate::metrics::RunMetrics;
use crate::report::{pct, pct_delta, Table};
use crate::runner::{parallel_map, run_benchmark};
use crate::system::System;

/// The full 27-program suite.
#[must_use]
pub fn all_benches() -> Vec<&'static str> {
    suite().iter().map(|p| p.name).collect()
}

/// A representative 10-program subset for quick harness runs: the
/// memory-intensive word-0-friendly programs, the pointer chasers, and a
/// low-intensity control.
#[must_use]
pub fn default_benches() -> Vec<&'static str> {
    vec![
        "stream",
        "mg",
        "leslie3d",
        "libquantum",
        "GemsFDTD", // word-0 streaming
        "mcf",
        "omnetpp",
        "lbm", // unbiased / chasing
        "bzip2",
        "gobmk", // low intensity
    ]
}

/// One benchmark's results across several memory kinds.
#[derive(Debug, Clone)]
pub struct SweepRow {
    /// Benchmark name.
    pub bench: String,
    /// DDR3-baseline metrics (8-core shared run).
    pub base: RunMetrics,
    /// Per-kind metrics.
    pub configs: Vec<(MemKind, RunMetrics)>,
}

impl SweepRow {
    /// Normalized throughput of `kind` (1.0 = baseline).
    ///
    /// All runs execute the same rate-mode workload (N copies / threads of
    /// one program), so the aggregate-IPC ratio equals the normalized
    /// weighted speedup up to the (config-insensitive) `IPC_alone` factor,
    /// while being far less sensitive to short-run noise.
    #[must_use]
    pub fn normalized(&self, kind: MemKind) -> f64 {
        self.metrics(kind).map_or(f64::NAN, |m| m.ipc_total() / self.base.ipc_total().max(1e-9))
    }

    /// Metrics of `kind`.
    #[must_use]
    pub fn metrics(&self, kind: MemKind) -> Option<&RunMetrics> {
        self.configs.iter().find(|(k, _)| *k == kind).map(|(_, m)| m)
    }
}

/// Sweep `kinds` (plus the DDR3 baseline) over `benches`.
///
/// Cells run across the [`crate::sweep`] worker pool (`CWF_JOBS`). A
/// cell that panics is reported on stderr and dropped: a failed config
/// leaves a hole [`SweepRow::metrics`] reports as `None`; a failed
/// baseline drops the whole row.
#[must_use]
pub fn sweep(benches: &[&str], kinds: &[MemKind], reads: u64) -> Vec<SweepRow> {
    // Flatten to (bench, kind-or-baseline) cells for the worker pool.
    // Figure drivers pin every run to the paper seed so their tables
    // reproduce EXPERIMENTS.md exactly (the CLI `sweep` command instead
    // decorrelates cells via `sweep::cell_seed`).
    let mut tasks: Vec<(String, Option<MemKind>)> = Vec::new();
    let mut cells: Vec<crate::sweep::Cell> = Vec::new();
    for b in benches {
        for kind in std::iter::once(None).chain(kinds.iter().copied().map(Some)) {
            tasks.push(((*b).to_owned(), kind));
            cells.push(crate::sweep::Cell {
                bench: (*b).to_owned(),
                cfg: RunConfig::paper(kind.unwrap_or(MemKind::Ddr3), reads),
            });
        }
    }
    let results = crate::sweep::run_cells(&cells);
    let mut by_task: BTreeMap<(String, Option<MemKind>), RunMetrics> = BTreeMap::new();
    for (task, result) in tasks.into_iter().zip(results) {
        match result {
            crate::sweep::CellResult::Done(m, _) => {
                by_task.insert(task, m);
            }
            crate::sweep::CellResult::Failed { bench, mem, error } => {
                eprintln!("sweep cell {bench}/{} failed: {error}", mem.label());
            }
        }
    }
    benches
        .iter()
        .filter_map(|b| {
            let base = by_task.remove(&((*b).to_owned(), None))?;
            let configs = kinds
                .iter()
                .filter_map(|k| by_task.remove(&((*b).to_owned(), Some(*k))).map(|m| (*k, m)))
                .collect();
            Some(SweepRow { bench: (*b).to_owned(), base, configs })
        })
        .collect()
}

fn mean(xs: impl Iterator<Item = f64>) -> f64 {
    let v: Vec<f64> = xs.collect();
    if v.is_empty() {
        0.0
    } else {
        v.iter().sum::<f64>() / v.len() as f64
    }
}

// ---------------------------------------------------------------------------
// Figure 1: homogeneous RLDRAM3 / DDR3 / LPDDR2.
// ---------------------------------------------------------------------------

/// Figure 1a (normalized throughput) and 1b (latency breakdown).
#[must_use]
pub fn fig1_homogeneous(benches: &[&str], reads: u64) -> (Table, Table) {
    let rows = sweep(benches, &[MemKind::Rldram3, MemKind::Lpddr2], reads);

    let mut t1 = Table::new(
        "Figure 1a: homogeneous throughput normalized to DDR3 (paper: RLDRAM3 +31%, LPDDR2 -13%)",
        &["bench", "RLDRAM3", "LPDDR2"],
    );
    for r in &rows {
        t1.row(vec![
            r.bench.clone(),
            format!("{:.3}", r.normalized(MemKind::Rldram3)),
            format!("{:.3}", r.normalized(MemKind::Lpddr2)),
        ]);
    }
    t1.row(vec![
        "MEAN".into(),
        format!("{:.3}", mean(rows.iter().map(|r| r.normalized(MemKind::Rldram3)))),
        format!("{:.3}", mean(rows.iter().map(|r| r.normalized(MemKind::Lpddr2)))),
    ]);

    let mut t2 = Table::new(
        "Figure 1b: DRAM read latency breakdown, ns (queue + core/service)",
        &["bench", "DDR3 queue", "DDR3 core", "RLD queue", "RLD core", "LP queue", "LP core"],
    );
    for r in &rows {
        let rld = r.metrics(MemKind::Rldram3).expect("swept");
        let lp = r.metrics(MemKind::Lpddr2).expect("swept");
        t2.row(vec![
            r.bench.clone(),
            format!("{:.1}", r.base.mem_stats.avg_queue_ns()),
            format!("{:.1}", r.base.mem_stats.avg_service_ns()),
            format!("{:.1}", rld.mem_stats.avg_queue_ns()),
            format!("{:.1}", rld.mem_stats.avg_service_ns()),
            format!("{:.1}", lp.mem_stats.avg_queue_ns()),
            format!("{:.1}", lp.mem_stats.avg_service_ns()),
        ]);
    }
    t2.note("paper: RLDRAM3 average access time ~43% below DDR3, mostly from queue latency");
    (t1, t2)
}

// ---------------------------------------------------------------------------
// Figure 2: power vs bus utilization (analytic, open loop).
// ---------------------------------------------------------------------------

/// Figure 2: per-chip power vs data-bus utilization for the three parts.
#[must_use]
pub fn fig2_power_utilization() -> Table {
    let mut t = Table::new(
        "Figure 2: chip power (W) vs bus utilization (RLDRAM3 512Mb-class vs 2Gb DDR3/LPDDR2)",
        &["util", "RLDRAM3", "DDR3", "LPDDR2"],
    );
    let rld = (IddTable::rldram3_x18(), DeviceConfig::rldram3());
    let ddr = (IddTable::ddr3(), DeviceConfig::ddr3_1600());
    let lp = (IddTable::lpddr2_server(), DeviceConfig::lpddr2_800());
    for pct_util in (0..=100).step_by(10) {
        let u = f64::from(pct_util) / 100.0;
        t.row(vec![
            format!("{pct_util}%"),
            format!("{:.3}", power_at_utilization(&rld.0, &rld.1, u, 0.7).total_w()),
            format!("{:.3}", power_at_utilization(&ddr.0, &ddr.1, u, 0.7).total_w()),
            format!("{:.3}", power_at_utilization(&lp.0, &lp.1, u, 0.7).total_w()),
        ]);
    }
    t.note("paper: RLDRAM3 dominated by background power at low utilization; gap narrows as utilization rises");
    t
}

// ---------------------------------------------------------------------------
// Figures 3 & 4: critical word distributions (LLC-filtered, no timing).
// ---------------------------------------------------------------------------

/// LLC-filtered first-touch (critical word) analysis for one benchmark:
/// returns the aggregate word histogram and per-line histograms.
fn critical_word_profile(bench: &str, misses: u64) -> ([u64; 8], BTreeMap<u64, [u32; 8]>) {
    let profile = by_name(bench).expect("known benchmark");
    let mut l2 = Cache::new(CacheCfg::l2_4m_8way());
    let mut gens: Vec<TraceGen> = (0..8).map(|c| TraceGen::new(profile, c, 0xF163)).collect();
    let mut hist = [0u64; 8];
    let mut per_line: BTreeMap<u64, [u32; 8]> = BTreeMap::new();
    let mut seen = 0u64;
    let mut core = 0usize;
    while seen < misses {
        let op = gens[core].next_op();
        core = (core + 1) % gens.len();
        let (TraceOp::Load { addr, .. } | TraceOp::Store { addr, .. }) = op else {
            continue;
        };
        let line = addr >> 6;
        let word = ((addr >> 3) & 7) as usize;
        if l2.lookup(line).is_none() {
            l2.insert(line, LineMeta::default());
            hist[word] += 1;
            per_line.entry(line).or_default()[word] += 1;
            seen += 1;
        }
    }
    (hist, per_line)
}

/// Figure 3: per-line critical-word bias for leslie3d and mcf.
#[must_use]
pub fn fig3_line_profiles(misses: u64) -> Table {
    let mut t = Table::new(
        "Figure 3: critical words of the most-missed cache lines (dominant word per line)",
        &["bench", "line rank", "misses", "dominant word", "dominant share"],
    );
    for bench in ["leslie3d", "mcf"] {
        let (_, per_line) = critical_word_profile(bench, misses);
        let mut lines: Vec<(u64, [u32; 8])> = per_line.into_iter().collect();
        lines.sort_unstable_by_key(|(line, h)| (std::cmp::Reverse(h.iter().sum::<u32>()), *line));
        for (rank, (_, h)) in lines.iter().take(10).enumerate() {
            let total: u32 = h.iter().sum();
            let (dom, dom_n) = h.iter().enumerate().max_by_key(|(_, n)| **n).expect("8 words");
            t.row(vec![
                bench.into(),
                format!("{}", rank + 1),
                format!("{total}"),
                format!("w{dom}"),
                pct(f64::from(*dom_n) / f64::from(total.max(1))),
            ]);
        }
        // Aggregate per-line regularity: how often does a line's fetch hit
        // its own dominant word? (The quantity the adaptive scheme banks on.)
        let (dom_hits, all): (u64, u64) = lines.iter().fold((0, 0), |(d, a), (_, h)| {
            let total: u32 = h.iter().sum();
            let dom = *h.iter().max().expect("8 words");
            (d + u64::from(dom), a + u64::from(total))
        });
        t.note(&format!(
            "{bench}: {} of fetches hit the line's dominant word",
            pct(dom_hits as f64 / all.max(1) as f64)
        ));
    }
    t.note("paper: within a line there is a well-defined bias toward one or two words");
    t
}

/// Figure 4: distribution of critical words across the suite.
#[must_use]
pub fn fig4_critical_word_distribution(benches: &[&str], misses: u64) -> Table {
    let mut t = Table::new(
        "Figure 4: critical word distribution at the DRAM level (paper: word 0 >50% for 21 of 27)",
        &["bench", "w0", "w1", "w2", "w3", "w4", "w5", "w6", "w7"],
    );
    let rows: Vec<(String, [u64; 8])> =
        parallel_map(benches.iter().map(|b| (*b).to_owned()).collect(), |bench| {
            (bench.clone(), critical_word_profile(bench, misses).0)
        });
    let mut word0_over_half = 0;
    for (bench, hist) in &rows {
        let total: u64 = hist.iter().sum::<u64>().max(1);
        if hist[0] as f64 / total as f64 > 0.5 {
            word0_over_half += 1;
        }
        let mut cells = vec![bench.clone()];
        cells.extend(hist.iter().map(|h| pct(*h as f64 / total as f64)));
        t.row(cells);
    }
    t.note(&format!(
        "{word0_over_half} of {} programs have word-0 critical in >50% of fetches",
        rows.len()
    ));
    t
}

// ---------------------------------------------------------------------------
// Figures 6, 7, 8: the CWF organizations.
// ---------------------------------------------------------------------------

/// Figures 6 (throughput), 7 (critical-word latency) and 8 (% served by
/// RLDRAM3) from one sweep over RD / RL / DL.
#[must_use]
pub fn fig6_7_8_cwf(benches: &[&str], reads: u64) -> (Table, Table, Table) {
    let rows = sweep(benches, &[MemKind::Rd, MemKind::Rl, MemKind::Dl], reads);

    let mut t6 = Table::new(
        "Figure 6: CWF throughput normalized to DDR3 (paper: RD +21%, RL +12.9%, DL -9%)",
        &["bench", "RD", "RL", "DL"],
    );
    for r in &rows {
        t6.row(vec![
            r.bench.clone(),
            format!("{:.3}", r.normalized(MemKind::Rd)),
            format!("{:.3}", r.normalized(MemKind::Rl)),
            format!("{:.3}", r.normalized(MemKind::Dl)),
        ]);
    }
    t6.row(vec![
        "MEAN".into(),
        format!("{:.3}", mean(rows.iter().map(|r| r.normalized(MemKind::Rd)))),
        format!("{:.3}", mean(rows.iter().map(|r| r.normalized(MemKind::Rl)))),
        format!("{:.3}", mean(rows.iter().map(|r| r.normalized(MemKind::Dl)))),
    ]);

    let mut t7 = Table::new(
        "Figure 7: mean critical-word latency, ns (paper: RD -30%, RL -22% vs DDR3)",
        &["bench", "DDR3", "RD", "RL", "DL"],
    );
    for r in &rows {
        let cell = |m: &RunMetrics| format!("{:.1}", m.avg_cw_latency_ns());
        t7.row(vec![
            r.bench.clone(),
            cell(&r.base),
            cell(r.metrics(MemKind::Rd).expect("swept")),
            cell(r.metrics(MemKind::Rl).expect("swept")),
            cell(r.metrics(MemKind::Dl).expect("swept")),
        ]);
    }
    let mean_ratio = |kind: MemKind| {
        mean(rows.iter().map(|r| {
            r.metrics(kind).expect("swept").avg_cw_latency_ns() / r.base.avg_cw_latency_ns()
        }))
    };
    t7.note(&format!(
        "mean critical-word latency vs DDR3: RD {}, RL {}, DL {}",
        pct_delta(mean_ratio(MemKind::Rd)),
        pct_delta(mean_ratio(MemKind::Rl)),
        pct_delta(mean_ratio(MemKind::Dl)),
    ));

    let mut t8 = Table::new(
        "Figure 8: % of critical words served by the fast DIMM under RL (paper avg: 67%)",
        &["bench", "served fast", "avg head start (cpu cycles)"],
    );
    for r in &rows {
        let m = r.metrics(MemKind::Rl).expect("swept");
        let cwf = m.cwf.expect("RL is CWF");
        t8.row(vec![
            r.bench.clone(),
            pct(cwf.served_fast_fraction()),
            format!("{:.0}", cwf.avg_head_start()),
        ]);
    }
    t8.note(
        "head start is the fast part's arrival lead over the slow part (paper: ~70 CPU cycles)",
    );
    (t6, t7, t8)
}

// ---------------------------------------------------------------------------
// Figure 9: adaptive and oracular placement.
// ---------------------------------------------------------------------------

/// Figure 9: RL vs RL-AD vs RL-OR vs all-RLDRAM3 (paper: 12.9% < 15.7% <
/// 28% < 31%).
#[must_use]
pub fn fig9_placement(benches: &[&str], reads: u64) -> Table {
    let kinds = [MemKind::Rl, MemKind::RlAdaptive, MemKind::RlOracle, MemKind::Rldram3];
    let rows = sweep(benches, &kinds, reads);
    let mut t = Table::new(
        "Figure 9: placement schemes, throughput normalized to DDR3",
        &["bench", "RL", "RL AD", "RL OR", "RLDRAM3"],
    );
    for r in &rows {
        let mut cells = vec![r.bench.clone()];
        cells.extend(kinds.iter().map(|k| format!("{:.3}", r.normalized(*k))));
        t.row(cells);
    }
    let mut cells = vec!["MEAN".to_owned()];
    cells.extend(
        kinds.iter().map(|k| format!("{:.3}", mean(rows.iter().map(|r| r.normalized(*k))))),
    );
    t.row(cells);
    t.note("expected ordering: RL < RL AD < RL OR < RLDRAM3");
    t
}

// ---------------------------------------------------------------------------
// Figures 10 & 11: energy.
// ---------------------------------------------------------------------------

/// System-energy ratio of `m` against the baseline `base` (per unit work:
/// energy/instruction), under the §6.1.3 model.
fn system_energy_ratio(base: &RunMetrics, m: &RunMetrics, io: LpddrIo) -> f64 {
    let model = SystemEnergyModel::from_baseline(
        base.dram_power_w(LpddrIo::ServerAdapted).max(1e-6),
        base.ipc_total().max(1e-9),
    );
    // Energy per instruction = system power / (IPC × f); the CPU frequency
    // cancels in the ratio.
    let epi = |mm: &RunMetrics, io| {
        model.system_power_w(mm.dram_power_w(io), mm.ipc_total()) / mm.ipc_total().max(1e-9)
    };
    epi(m, io) / epi(base, LpddrIo::ServerAdapted)
}

/// Memory-only energy ratio (per instruction).
fn memory_energy_ratio(base: &RunMetrics, m: &RunMetrics, io: LpddrIo) -> f64 {
    let epi = |mm: &RunMetrics, io| mm.dram_power_w(io) / mm.ipc_total().max(1e-9);
    epi(m, io) / epi(base, LpddrIo::ServerAdapted)
}

/// Figures 10 (system energy) and 11 (energy savings vs bandwidth).
#[must_use]
pub fn fig10_11_energy(benches: &[&str], reads: u64) -> (Table, Table) {
    let rows = sweep(benches, &[MemKind::Rl, MemKind::Dl], reads);

    let mut t10 = Table::new(
        "Figure 10: system energy normalized to DDR3 (paper: RL -6%, DL -13%; RL memory energy -15%)",
        &["bench", "RL system", "DL system", "RL memory", "RL mem power"],
    );
    for r in &rows {
        let rl = r.metrics(MemKind::Rl).expect("swept");
        let dl = r.metrics(MemKind::Dl).expect("swept");
        t10.row(vec![
            r.bench.clone(),
            format!("{:.3}", system_energy_ratio(&r.base, rl, LpddrIo::ServerAdapted)),
            format!("{:.3}", system_energy_ratio(&r.base, dl, LpddrIo::ServerAdapted)),
            format!("{:.3}", memory_energy_ratio(&r.base, rl, LpddrIo::ServerAdapted)),
            format!(
                "{:.3}",
                rl.dram_power_w(LpddrIo::ServerAdapted)
                    / r.base.dram_power_w(LpddrIo::ServerAdapted).max(1e-9)
            ),
        ]);
    }
    let rl_sys = mean(rows.iter().map(|r| {
        system_energy_ratio(&r.base, r.metrics(MemKind::Rl).expect("swept"), LpddrIo::ServerAdapted)
    }));
    let dl_sys = mean(rows.iter().map(|r| {
        system_energy_ratio(&r.base, r.metrics(MemKind::Dl).expect("swept"), LpddrIo::ServerAdapted)
    }));
    let rl_mem = mean(rows.iter().map(|r| {
        memory_energy_ratio(&r.base, r.metrics(MemKind::Rl).expect("swept"), LpddrIo::ServerAdapted)
    }));
    t10.row(vec![
        "MEAN".into(),
        format!("{rl_sys:.3}"),
        format!("{dl_sys:.3}"),
        format!("{rl_mem:.3}"),
        String::new(),
    ]);

    let mut t11 = Table::new(
        "Figure 11: RL system-energy savings vs baseline bandwidth utilization",
        &["bench", "bus util", "energy saving"],
    );
    let mut pts: Vec<(String, f64, f64)> = rows
        .iter()
        .map(|r| {
            let rl = r.metrics(MemKind::Rl).expect("swept");
            (
                r.bench.clone(),
                r.base.bus_utilization(),
                1.0 - system_energy_ratio(&r.base, rl, LpddrIo::ServerAdapted),
            )
        })
        .collect();
    pts.sort_by(|a, b| a.1.total_cmp(&b.1));
    for (bench, util, saving) in &pts {
        t11.row(vec![bench.clone(), pct(*util), pct(*saving)]);
    }
    // Correlation direction check (paper: savings grow with utilization).
    let n = pts.len() as f64;
    if pts.len() > 2 {
        let mu_x = pts.iter().map(|p| p.1).sum::<f64>() / n;
        let mu_y = pts.iter().map(|p| p.2).sum::<f64>() / n;
        let cov = pts.iter().map(|p| (p.1 - mu_x) * (p.2 - mu_y)).sum::<f64>() / n;
        t11.note(&format!(
            "covariance(utilization, saving) = {cov:.5} (paper expects positive trend)"
        ));
    }
    (t10, t11)
}

// ---------------------------------------------------------------------------
// §6.1.1 / §4.2.4 ablations and §7 alternatives.
// ---------------------------------------------------------------------------

/// Aggregate IPC of a run with a custom backend factory.
fn ipc_custom<F>(cfg: &RunConfig, bench: &str, make: F) -> f64
where
    F: Fn() -> MemBackend,
{
    let profile = by_name(bench).expect("known benchmark");
    System::with_backend(cfg, profile, make()).run().ipc_total()
}

/// A striped (4-chip) fast store: one 36-bit sub-channel instead of four
/// x9 sub-ranks — the organization §4.2.4's first optimization replaces.
fn striped_fast_config() -> CwfConfig {
    let mut cfg = CwfConfig::rl();
    // 9 B over a 36-bit bus: 2 beats = 1 device cycle.
    cfg.fast.timings.t_burst = 1;
    cfg.fast_subchannels = 1;
    cfg.fast_chips = 4;
    cfg
}

/// §6.1.1 ablations: random mapping, no-prefetcher, and the §4.2.4 design
/// choices (sub-ranking, shared command bus, LPDDR2 page policy).
#[must_use]
pub fn ablations(benches: &[&str], reads: u64) -> Table {
    #[derive(Clone)]
    enum Variant {
        Kind(MemKind, bool /* prefetch */),
        Custom(&'static str),
    }
    let variants: Vec<(&'static str, Variant)> = vec![
        ("RL (reference)", Variant::Kind(MemKind::Rl, true)),
        ("RL random mapping (paper: +2.1%)", Variant::Kind(MemKind::RlRandom, true)),
        ("RL no prefetcher (paper: +17.3%)", Variant::Kind(MemKind::Rl, false)),
        ("RL striped 4-chip fast store", Variant::Custom("striped")),
        ("RL private fast cmd buses", Variant::Custom("private")),
        ("RL close-page LPDDR2", Variant::Custom("closedlp")),
        ("DDR3 strict-FCFS scheduling", Variant::Custom("fcfs")),
        ("DDR3 page-interleaved channels", Variant::Custom("pagemap")),
    ];

    // Baselines: prefetch-on and prefetch-off DDR3.
    let tasks: Vec<(String, usize)> = benches
        .iter()
        .flat_map(|b| (0..variants.len() + 2).map(move |v| ((*b).to_owned(), v)))
        .collect();
    let variants_ref = &variants;
    let results: Vec<f64> = parallel_map(tasks.clone(), move |(bench, v)| {
        let paper = |mem, prefetch: bool| {
            let mut c = RunConfig::paper(mem, reads);
            c.prefetch = prefetch;
            c
        };
        match *v {
            0 => run_benchmark(&paper(MemKind::Ddr3, true), bench).ipc_total(),
            1 => run_benchmark(&paper(MemKind::Ddr3, false), bench).ipc_total(),
            i => match &variants_ref[i - 2].1 {
                Variant::Kind(kind, prefetch) => {
                    run_benchmark(&paper(*kind, *prefetch), bench).ipc_total()
                }
                Variant::Custom(which) => {
                    let is_rl = !matches!(*which, "fcfs" | "pagemap");
                    let cfg = paper(if is_rl { MemKind::Rl } else { MemKind::Ddr3 }, true);
                    let make = || -> MemBackend {
                        match *which {
                            "striped" => {
                                MemBackend::Cwf(HeteroCwfMemory::new(striped_fast_config()))
                            }
                            "private" => MemBackend::Cwf(HeteroCwfMemory::new(
                                CwfConfig::rl().with_private_fast_buses(),
                            )),
                            "closedlp" => {
                                let mut c = CwfConfig::rl();
                                c.slow.page_policy = dram_timing::PagePolicy::Closed;
                                MemBackend::Cwf(HeteroCwfMemory::new(c))
                            }
                            "fcfs" => {
                                let params = mem_ctrl::CtrlParams {
                                    policy: mem_ctrl::SchedPolicy::Fcfs,
                                    ..mem_ctrl::CtrlParams::default()
                                };
                                MemBackend::Homogeneous(HomogeneousMemory::new(
                                    DeviceConfig::ddr3_1600(),
                                    4,
                                    1,
                                    9,
                                    params,
                                ))
                            }
                            "pagemap" => MemBackend::Homogeneous(HomogeneousMemory::with_scheme(
                                DeviceConfig::ddr3_1600(),
                                4,
                                1,
                                9,
                                mem_ctrl::CtrlParams::default(),
                                mem_ctrl::MappingScheme::PageInterleave,
                            )),
                            _ => unreachable!("known variant"),
                        }
                    };
                    ipc_custom(&cfg, bench, make)
                }
            },
        }
    });
    let by_task: BTreeMap<(String, usize), f64> = tasks.into_iter().zip(results).collect();

    let mut t = Table::new(
        "Ablations: mean throughput normalized to the matching DDR3 baseline",
        &["variant", "normalized throughput"],
    );
    for (i, (label, variant)) in variants.iter().enumerate() {
        let norm = mean(benches.iter().map(|b| {
            let baseline_idx = match variant {
                Variant::Kind(_, false) => 1, // compare against no-prefetch baseline
                _ => 0,
            };
            let base = by_task[&((*b).to_owned(), baseline_idx)];
            let ws = by_task[&((*b).to_owned(), i + 2)];
            ws / base.max(1e-9)
        }));
        t.row(vec![(*label).to_owned(), format!("{norm:.3}")]);
    }
    t
}

/// §7.1 page placement and §7.2 unterminated-LPDDR alternatives.
#[must_use]
pub fn alternatives(benches: &[&str], reads: u64) -> (Table, Table) {
    // --- §7.1: profile-guided page placement ---
    let rows: Vec<(String, f64, f64)> =
        parallel_map(benches.iter().map(|b| (*b).to_owned()).collect(), |bench| {
            let profile = by_name(bench).expect("known benchmark");
            let cfg = RunConfig::paper(MemKind::Ddr3, reads / 2);
            // Offline profiling pass over the baseline.
            let mut prof_sys = System::with_backend(
                &cfg,
                profile,
                MemBackend::Profiling(ProfilingMemory::new(HomogeneousMemory::baseline_ddr3())),
            );
            let _ = prof_sys.run();
            let counts = prof_sys
                .hierarchy()
                .memory()
                .profiling()
                .expect("profiling backend")
                .page_counts()
                .clone();
            // Top 7.6% of touched pages go to RLDRAM3 (paper §7.1).
            let hot = hot_pages(&counts, 0.076);
            let cfg = RunConfig::paper(MemKind::Ddr3, reads);
            let ws_pp = ipc_custom(&cfg, bench, || {
                MemBackend::PagePlaced(PagePlacedMemory::new(hot.clone()))
            });
            let ws_base = run_benchmark(&cfg, bench).ipc_total();
            let hot_frac = {
                let total: u64 = counts.values().sum();
                let hot_count: u64 =
                    counts.iter().filter(|(p, _)| hot.contains(p)).map(|(_, c)| *c).sum();
                hot_count as f64 / total.max(1) as f64
            };
            ((*bench).to_owned(), ws_pp / ws_base.max(1e-9), hot_frac)
        });
    let mut t71 = Table::new(
        "§7.1 page placement: top 7.6% of pages in RLDRAM3 (paper: -9.3%..+11.2%, avg ~+8%)",
        &["bench", "normalized throughput", "accesses to hot pages"],
    );
    for (bench, norm, hot_frac) in &rows {
        t71.row(vec![bench.clone(), format!("{norm:.3}"), pct(*hot_frac)]);
    }
    t71.row(vec![
        "MEAN".into(),
        format!("{:.3}", mean(rows.iter().map(|r| r.1))),
        pct(mean(rows.iter().map(|r| r.2))),
    ]);
    t71.note("paper: top pages capture at most ~30% of accesses, limiting page-granularity gains");

    // --- §7.2: Malladi-style unterminated LPDDR ---
    let sweep_rows = sweep(benches, &[MemKind::Rl], reads);
    let mut t72 = Table::new(
        "§7.2 unterminated LPDDR2 (Malladi-style): RL system energy vs DDR3 (paper: savings -> 26.1%)",
        &["bench", "server-adapted", "unterminated"],
    );
    for r in &sweep_rows {
        let rl = r.metrics(MemKind::Rl).expect("swept");
        t72.row(vec![
            r.bench.clone(),
            format!("{:.3}", system_energy_ratio(&r.base, rl, LpddrIo::ServerAdapted)),
            format!("{:.3}", system_energy_ratio(&r.base, rl, LpddrIo::Unterminated)),
        ]);
    }
    t72.row(vec![
        "MEAN".into(),
        format!(
            "{:.3}",
            mean(sweep_rows.iter().map(|r| system_energy_ratio(
                &r.base,
                r.metrics(MemKind::Rl).expect("swept"),
                LpddrIo::ServerAdapted
            )))
        ),
        format!(
            "{:.3}",
            mean(sweep_rows.iter().map(|r| system_energy_ratio(
                &r.base,
                r.metrics(MemKind::Rl).expect("swept"),
                LpddrIo::Unterminated
            )))
        ),
    ]);
    (t71, t72)
}

// ---------------------------------------------------------------------------
// DRAM-cache head-to-head: CWF vs tags-in-DRAM cache vs page placement.
// ---------------------------------------------------------------------------

/// Head-to-head of the three heterogeneity disciplines over one workload
/// set: the paper's word-granularity CWF split (`RL`), a conventional
/// tags-in-DRAM line cache in front of a slow bulk store
/// (`dramcache:rldram3+nvm_slow`), and §7.1-style profile-guided page
/// placement. Throughput is normalized to the DDR3 baseline; the last
/// column reports the DRAM cache's read hit rate (blank for the others).
///
/// The interesting workloads are the `dcsweep`/`dcthrash`/`dcresident` stressors:
/// `dcsweep` streams a footprint larger than the cache (hit rate
/// collapses, every miss pays probe + NVM fill), while CWF and page
/// placement keep their fast-store benefit because neither depends on
/// reuse. Suite programs with locality show the cache recovering.
#[must_use]
pub fn dramcache_head_to_head(benches: &[&str], reads: u64) -> Table {
    const VARIANTS: usize = 4; // 0 = DDR3 base, 1 = RL, 2 = DRAM cache, 3 = page placement
    let dc_kind = MemKind::DramCache(DeviceKind::Rldram3, DeviceKind::NvmSlow);
    let tasks: Vec<(String, usize)> =
        benches.iter().flat_map(|b| (0..VARIANTS).map(move |v| ((*b).to_owned(), v))).collect();
    let results: Vec<(f64, Option<f64>)> = parallel_map(tasks.clone(), move |(bench, v)| {
        match *v {
            0 => (run_benchmark(&RunConfig::paper(MemKind::Ddr3, reads), bench).ipc_total(), None),
            1 => (run_benchmark(&RunConfig::paper(MemKind::Rl, reads), bench).ipc_total(), None),
            2 => {
                let cfg = RunConfig::paper(dc_kind, reads);
                let profile = by_name(bench).expect("known benchmark");
                let mut sys = System::new(&cfg, profile);
                let m = sys.run();
                let hit = sys.hierarchy().memory().dramcache_stats().map(|s| s.read_hit_rate());
                (m.ipc_total(), hit)
            }
            _ => {
                // §7.1 recipe: offline profiling pass, top 7.6% of pages hot.
                let profile = by_name(bench).expect("known benchmark");
                let prof_cfg = RunConfig::paper(MemKind::Ddr3, reads / 2);
                let mut prof_sys = System::with_backend(
                    &prof_cfg,
                    profile,
                    MemBackend::Profiling(ProfilingMemory::new(HomogeneousMemory::baseline_ddr3())),
                );
                let _ = prof_sys.run();
                let counts = prof_sys
                    .hierarchy()
                    .memory()
                    .profiling()
                    .expect("profiling backend")
                    .page_counts()
                    .clone();
                let hot = hot_pages(&counts, 0.076);
                let cfg = RunConfig::paper(MemKind::Ddr3, reads);
                (
                    ipc_custom(&cfg, bench, || {
                        MemBackend::PagePlaced(PagePlacedMemory::new(hot.clone()))
                    }),
                    None,
                )
            }
        }
    });
    let by_task: BTreeMap<(String, usize), (f64, Option<f64>)> =
        tasks.into_iter().zip(results).collect();

    let mut t = Table::new(
        "DRAM-cache head-to-head: throughput normalized to DDR3",
        &["bench", "CWF (RL)", "DRAM cache (RLDRAM3+NVM)", "page placement", "DC read hit rate"],
    );
    let mut means = [Vec::new(), Vec::new(), Vec::new()];
    for b in benches {
        let base = by_task[&((*b).to_owned(), 0)].0.max(1e-9);
        let norm: Vec<f64> =
            (1..VARIANTS).map(|v| by_task[&((*b).to_owned(), v)].0 / base).collect();
        for (m, n) in means.iter_mut().zip(&norm) {
            m.push(*n);
        }
        let hit = by_task[&((*b).to_owned(), 2)].1.map_or_else(String::new, pct);
        t.row(vec![
            (*b).to_owned(),
            format!("{:.3}", norm[0]),
            format!("{:.3}", norm[1]),
            format!("{:.3}", norm[2]),
            hit,
        ]);
    }
    t.row(vec![
        "MEAN".into(),
        format!("{:.3}", mean(means[0].iter().copied())),
        format!("{:.3}", mean(means[1].iter().copied())),
        format!("{:.3}", mean(means[2].iter().copied())),
        String::new(),
    ]);
    t.note("DRAM cache pays a tag probe on every access and an NVM fill on every miss;");
    t.note("CWF and page placement never probe — their fast-store benefit is reuse-independent");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig2_is_fast_and_ordered() {
        let t = fig2_power_utilization();
        assert_eq!(t.rows.len(), 11);
        // First row (0% util): RLDRAM3 > DDR3 > LPDDR2.
        let parse = |s: &String| s.parse::<f64>().expect("numeric cell");
        let r0 = &t.rows[0];
        assert!(parse(&r0[1]) > parse(&r0[2]));
        assert!(parse(&r0[2]) > parse(&r0[3]));
    }

    #[test]
    fn critical_word_profile_matches_figure4_expectations() {
        let (hist, _) = critical_word_profile("libquantum", 3_000);
        let total: u64 = hist.iter().sum();
        assert!(hist[0] as f64 / total as f64 > 0.5);
        let (hist, _) = critical_word_profile("xalancbmk", 3_000);
        let total: u64 = hist.iter().sum();
        assert!((hist[0] as f64 / total as f64) < 0.5);
    }

    #[test]
    fn fig3_reports_dominant_words() {
        let t = fig3_line_profiles(2_000);
        assert!(t.rows.len() >= 8);
        assert!(t.rows.iter().any(|r| r[0] == "leslie3d"));
        assert!(t.rows.iter().any(|r| r[0] == "mcf"));
    }

    #[test]
    fn small_sweep_produces_complete_rows() {
        let rows = sweep(&["stream"], &[MemKind::Rl], 600);
        assert_eq!(rows.len(), 1);
        let n = rows[0].normalized(MemKind::Rl);
        assert!(n.is_finite() && n > 0.0);
        assert!(rows[0].metrics(MemKind::Rl).is_some());
    }
}
