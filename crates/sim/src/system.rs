//! The full-system simulator: cores + hierarchy + memory, one CPU-cycle
//! master clock, with warm-up/measurement windows.

use cache_hier::{AccessOutcome, HierAudit, HierParams, HierStats, Hierarchy, StoreOutcome, Woken};
use cpu_model::{Core, CoreParams, IssueResult, MemOp, MemOpKind, TraceSource};
use cwf_core::CwfStats;
use cwf_tracelog::TraceEvent;
use cwf_verify::{Oracle, VerifyReport};
use mem_ctrl::{AuditRecord, MainMemory, MemSystemStats};
use workloads::{BenchmarkProfile, TraceGen};

/// A boxed, sendable trace source (synthetic generator or file replay).
pub type BoxedTrace = Box<dyn TraceSource + Send>;

use crate::config::{Kernel, MemBackend, RunConfig};
use crate::metrics::RunMetrics;
use crate::trace::{TraceReport, Tracer};

/// Execution counters the simulation kernel keeps about itself.
///
/// Deliberately **not** part of [`RunMetrics`]: the two kernels must
/// produce bit-identical metrics, so kernel bookkeeping travels on the
/// side (`report::to_json_diag` appends it as an additive JSON object).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KernelStats {
    /// Which kernel produced this run.
    pub kernel: Kernel,
    /// CPU cycles actually executed (per-cycle step bodies entered).
    pub steps: u64,
    /// Calls into `Hierarchy::tick` (each ticks the memory backend once).
    /// The cycle-driven kernel makes exactly one per step.
    pub mem_tick_calls: u64,
    /// CPU cycles the event-driven kernel jumped over without executing.
    pub cycles_skipped: u64,
    /// Real `Core::tick` calls (the cycle-driven kernel makes exactly
    /// `cores` per step). Core-cycles not ticked are covered by batched
    /// spans, broken down below; the invariant
    /// `core_ticks + stall + wait + cruise + replay == cores x simulated`
    /// holds whenever every core is synced to `now`.
    pub core_ticks: u64,
    /// Core-cycles batched by the O(1) full-ROB head-load stall jump.
    pub core_stall_cycles: u64,
    /// Core-cycles batched by the full-ROB retire-wait jump.
    pub core_wait_cycles: u64,
    /// Core-cycles batched by the steady-state compute cruise jump.
    pub core_cruise_cycles: u64,
    /// Core-cycles replayed one at a time inside spans (regime
    /// transitions; exact tick semantics, trace untouched).
    pub core_replay_cycles: u64,
}

impl KernelStats {
    /// Total simulated cycles (executed + skipped).
    #[must_use]
    pub fn simulated_cycles(&self) -> u64 {
        self.steps + self.cycles_skipped
    }

    /// Memory tick calls the cycle-driven kernel would have made per tick
    /// call this kernel actually made (1.0 for the cycle-driven kernel).
    #[must_use]
    pub fn tick_ratio(&self) -> f64 {
        if self.mem_tick_calls == 0 {
            1.0
        } else {
            self.simulated_cycles() as f64 / self.mem_tick_calls as f64
        }
    }

    /// Total core-cycles covered by batched spans instead of real ticks.
    #[must_use]
    pub fn core_span_cycles(&self) -> u64 {
        self.core_stall_cycles
            + self.core_wait_cycles
            + self.core_cruise_cycles
            + self.core_replay_cycles
    }

    /// Core ticks the cycle-driven kernel would have made per tick this
    /// kernel actually made (1.0 for the cycle-driven kernel).
    #[must_use]
    pub fn core_tick_ratio(&self) -> f64 {
        if self.core_ticks == 0 {
            1.0
        } else {
            (self.core_ticks + self.core_span_cycles()) as f64 / self.core_ticks as f64
        }
    }
}

cwf_ckpt::ckpt_struct!(KernelStats {
    kernel,
    steps,
    mem_tick_calls,
    cycles_skipped,
    core_ticks,
    core_stall_cycles,
    core_wait_cycles,
    core_cruise_cycles,
    core_replay_cycles,
});

/// Statistics snapshot taken at the warm-up → measurement boundary, so
/// the final report can subtract the warm window. Hoisted out of the run
/// loop (rather than living in `run`'s locals) so a checkpoint taken
/// mid-measurement carries it.
#[derive(Debug, Clone)]
struct WarmSnapshot {
    /// Per-core retired-instruction counts at the boundary.
    insts: Vec<u64>,
    /// The boundary cycle.
    cycles: u64,
    /// Hierarchy counters at the boundary.
    hier: HierStats,
    /// Memory-system counters at the boundary.
    mem: MemSystemStats,
    /// CWF counters at the boundary (CWF organizations only).
    cwf: Option<CwfStats>,
}

cwf_ckpt::ckpt_struct!(WarmSnapshot { insts, cycles, hier, mem, cwf });

/// Magic prefix of a `cwfmem.ckpt.v1` blob.
const CKPT_MAGIC: &[u8; 8] = b"CWFCKPT1";
/// Format version within the `CWFCKPT1` magic.
const CKPT_VERSION: u32 = 1;

/// A complete simulated machine for one benchmark run.
pub struct System {
    cfg: RunConfig,
    bench: String,
    cores: Vec<Core>,
    gens: Vec<BoxedTrace>,
    hierarchy: Hierarchy<MemBackend>,
    now: u64,
    woken_buf: Vec<Woken>,
    /// Cached `hierarchy.next_activity` bound: no memory-side state can
    /// change at any cycle strictly below this (`u64::MAX` = idle until
    /// new work arrives). 0 forces a tick on the first step.
    mem_wake: u64,
    /// Per-core lazy-advancement state (event kernel only): core `i` has
    /// executed every cycle strictly below `core_sync[i]`; cycles from
    /// there to the kernel's `now` are covered by `Core::advance` spans
    /// on demand.
    core_sync: Vec<u64>,
    /// Cached `Core::next_wake` bound per core: the core provably needs
    /// no real tick strictly below this (`u64::MAX` = only a memory
    /// completion can wake it). 0 forces a tick on the first cycle.
    core_wake: Vec<u64>,
    kstats: KernelStats,
    /// Statistics snapshot at the warm-up → measurement boundary;
    /// `None` while still warming up.
    warm: Option<WarmSnapshot>,
    /// Cross-layer verify oracle (`cfg.verify`); pure observer.
    oracle: Option<Oracle>,
    /// Cross-layer event tracer (`cfg.trace`); pure observer.
    tracer: Option<Tracer>,
    /// Reusable buffer for backend audit drains.
    audit_buf: Vec<AuditRecord>,
    /// Reusable buffer for trace drains.
    trace_buf: Vec<TraceEvent>,
    /// Fault injection: extra cycles added to every cached `mem_wake`
    /// bound, making the event kernel trust an optimistic quiet period the
    /// backend never promised. Only the verify oracle's seeded-fault tests
    /// set this (via [`System::inject_optimistic_wake`]).
    fault_wake_slack: u64,
    /// Fault injection: extra cycles added to every finite cached
    /// `core_wake` bound, making batched spans overrun into cycles that
    /// needed the instruction trace. Only the verify oracle's seeded-fault
    /// tests set this (via [`System::inject_optimistic_horizon`]).
    fault_horizon_slack: u64,
}

impl System {
    /// Build a system for `profile` under `cfg`.
    #[must_use]
    pub fn new(cfg: &RunConfig, profile: &BenchmarkProfile) -> Self {
        let backend = cfg.mem.build(cfg.parity_error_rate, cfg.seed);
        Self::with_backend(cfg, profile, backend)
    }

    /// Build with an explicit backend (page-placement experiments).
    #[must_use]
    pub fn with_backend(cfg: &RunConfig, profile: &BenchmarkProfile, backend: MemBackend) -> Self {
        let gens: Vec<BoxedTrace> = (0..cfg.cores)
            .map(|i| Box::new(TraceGen::new(profile, i, cfg.seed)) as BoxedTrace)
            .collect();
        let mut sys = Self::with_trace_sources(cfg, profile.name, gens, backend);
        // Adaptive placement: install the converged layout (every line the
        // workload regularly writes has been re-organised long before our
        // scaled-down measurement window — see DESIGN.md §4).
        let p = profile.clone();
        sys.hierarchy.memory_mut().set_steady_state_placement(Box::new(move |addr| {
            workloads::steady_state_tag(&p, addr)
        }));
        sys
    }

    /// Build from arbitrary per-core trace sources (e.g. file replays via
    /// [`workloads::FileTraceSource`]). No adaptive steady state is seeded
    /// — external traces carry no workload model.
    ///
    /// # Panics
    ///
    /// Panics if `sources.len() != cfg.cores`.
    #[must_use]
    pub fn with_trace_sources(
        cfg: &RunConfig,
        name: &str,
        sources: Vec<BoxedTrace>,
        backend: MemBackend,
    ) -> Self {
        assert_eq!(sources.len(), usize::from(cfg.cores), "one trace per core");
        let mut hp = if cfg.prefetch {
            HierParams::paper_default(cfg.cores)
        } else {
            HierParams::no_prefetch(cfg.cores)
        };
        hp.cores = cfg.cores;
        let mut sys = System {
            cores: (0..cfg.cores).map(|i| Core::new(i, CoreParams::paper_default())).collect(),
            gens: sources,
            hierarchy: Hierarchy::new(hp, backend),
            now: 0,
            woken_buf: Vec::new(),
            mem_wake: 0,
            core_sync: vec![0; usize::from(cfg.cores)],
            core_wake: vec![0; usize::from(cfg.cores)],
            kstats: KernelStats {
                kernel: cfg.kernel,
                steps: 0,
                mem_tick_calls: 0,
                cycles_skipped: 0,
                core_ticks: 0,
                core_stall_cycles: 0,
                core_wait_cycles: 0,
                core_cruise_cycles: 0,
                core_replay_cycles: 0,
            },
            cfg: *cfg,
            bench: name.to_owned(),
            warm: None,
            oracle: None,
            tracer: None,
            audit_buf: Vec::new(),
            trace_buf: Vec::new(),
            fault_wake_slack: 0,
            fault_horizon_slack: 0,
        };
        // The tracer reuses the audit plumbing for DRAM-level refresh and
        // power-state events, so either observer enables backend auditing.
        if cfg.verify || cfg.trace {
            sys.hierarchy.enable_audit();
        }
        if cfg.verify {
            sys.oracle = Some(Oracle::new(sys.hierarchy.memory().audit_channels()));
        }
        if cfg.trace {
            sys.hierarchy.enable_trace();
            for core in &mut sys.cores {
                core.enable_trace();
            }
            sys.tracer = Some(Tracer::new(&sys.hierarchy.memory().audit_channels(), cfg.cores));
        }
        sys.functional_warm(cfg.functional_warm_ops);
        sys
    }

    /// Feed everything observed since the last drain to the enabled
    /// observers: the oracle gets hierarchy-side submits/events plus
    /// backend command/power records, the tracer gets every layer's trace
    /// buffers plus the refresh/power subset of the audit records. No-op
    /// while both are off.
    fn drain_observers(&mut self) {
        if self.oracle.is_none() && self.tracer.is_none() {
            return;
        }
        let audits = self.hierarchy.take_audit();
        let mut records = std::mem::take(&mut self.audit_buf);
        records.clear();
        self.hierarchy.memory_mut().drain_audit(&mut records);
        if let Some(oracle) = &mut self.oracle {
            for a in audits {
                match a {
                    HierAudit::Submit { token, at } => oracle.observe_submit(token, at),
                    HierAudit::Event { ev, delivered_at } => {
                        oracle.observe_event(&ev, delivered_at);
                    }
                }
            }
            oracle.observe_records(&records);
        }
        if let Some(tracer) = &mut self.tracer {
            let mut ev = std::mem::take(&mut self.trace_buf);
            ev.clear();
            for core in &mut self.cores {
                core.drain_trace(&mut ev);
            }
            self.hierarchy.drain_trace(&mut ev);
            tracer.absorb_events(&mut ev);
            tracer.absorb_audit(&records);
            self.trace_buf = ev;
        }
        self.audit_buf = records;
    }

    /// Fault injection for the oracle's seeded-fault tests: report every
    /// memory wake-up `extra_cycles` later than the backend's bound, so the
    /// event kernel skips over real deadlines.
    pub fn inject_optimistic_wake(&mut self, extra_cycles: u64) {
        self.fault_wake_slack = extra_cycles;
    }

    /// Fault injection for the oracle's seeded-fault tests: report every
    /// finite core wake-up `extra_cycles` later than the core's own bound,
    /// so batched front-end spans run into cycles that needed the
    /// instruction trace (the span-audit must flag the overrun).
    pub fn inject_optimistic_horizon(&mut self, extra_cycles: u64) {
        self.fault_horizon_slack = extra_cycles;
    }

    /// The oracle's findings so far (complete after [`System::run`], which
    /// finalizes end-of-run obligations). `None` when `cfg.verify` is off.
    #[must_use]
    pub fn verify_report(&self) -> Option<VerifyReport> {
        self.oracle.as_ref().map(Oracle::report)
    }

    /// Snapshot the collected trace (complete after [`System::run`], which
    /// drains every layer's tail). `None` when `cfg.trace` is off.
    #[must_use]
    pub fn trace_report(&self) -> Option<TraceReport> {
        self.tracer.as_ref().map(Tracer::report)
    }

    /// Timing-free cache warming: advance every core's trace by
    /// `ops_per_core` memory operations through the functional cache model,
    /// replaying dirty evictions into the backend's adaptive placement
    /// state. This is the scaled-down analogue of the paper's fast-forward
    /// plus 5 M-cycle warm-up (§5); the timed run then continues from the
    /// warmed generators, so the L2 content matches the instruction stream
    /// about to execute.
    fn functional_warm(&mut self, ops_per_core: u64) {
        use cpu_model::TraceOp;
        let mut evictions: Vec<(u64, u8)> = Vec::new();
        for (core, gen) in self.gens.iter_mut().enumerate() {
            let mut done = 0;
            while done < ops_per_core {
                match gen.next_op() {
                    TraceOp::Gap(_) => {}
                    TraceOp::Load { addr, .. } => {
                        self.hierarchy.warm_access(core as u8, addr, false, &mut |l, w| {
                            evictions.push((l, w));
                        });
                        done += 1;
                    }
                    TraceOp::Store { addr, .. } => {
                        self.hierarchy.warm_access(core as u8, addr, true, &mut |l, w| {
                            evictions.push((l, w));
                        });
                        done += 1;
                    }
                }
                if evictions.len() >= 1024 {
                    for (l, w) in evictions.drain(..) {
                        self.hierarchy.memory_mut().seed_adaptive_tag(l, w);
                    }
                }
            }
        }
        for (l, w) in evictions.drain(..) {
            self.hierarchy.memory_mut().seed_adaptive_tag(l, w);
        }
    }

    /// True when any pure observer (oracle, tracer) is collecting.
    fn observers_on(&self) -> bool {
        self.oracle.is_some() || self.tracer.is_some()
    }

    /// Current CPU cycle.
    #[must_use]
    pub fn now(&self) -> u64 {
        self.now
    }

    /// The hierarchy (statistics access).
    #[must_use]
    pub fn hierarchy(&self) -> &Hierarchy<MemBackend> {
        &self.hierarchy
    }

    /// Kernel execution counters (steps, memory ticks, skipped cycles).
    #[must_use]
    pub fn kernel_stats(&self) -> KernelStats {
        self.kstats
    }

    /// Advance one CPU cycle (cycle-driven semantics: the memory side is
    /// ticked unconditionally).
    pub fn step(&mut self) {
        self.step_cycle();
    }

    /// One cycle of work, cycle-driven: every component ticks.
    fn step_cycle(&mut self) {
        let now = self.now;
        self.woken_buf.clear();
        self.hierarchy.tick(now, &mut self.woken_buf);
        self.kstats.mem_tick_calls += 1;
        for w in &self.woken_buf {
            self.cores[usize::from(w.core)].complete_load(w.load_id, w.at);
        }
        let hier = &mut self.hierarchy;
        for (core, gen) in self.cores.iter_mut().zip(self.gens.iter_mut()) {
            core.tick(now, gen, &mut |op: MemOp| match op.kind {
                MemOpKind::Load => match hier.load(op.core, op.pc, op.addr, now) {
                    AccessOutcome::Hit { complete_at } => IssueResult::Done { complete_at },
                    AccessOutcome::Miss { load_id } => IssueResult::Pending { load_id },
                    AccessOutcome::Blocked => IssueResult::Blocked,
                },
                MemOpKind::Store => match hier.store(op.core, op.pc, op.addr, now) {
                    StoreOutcome::Done => IssueResult::Done { complete_at: now + 1 },
                    StoreOutcome::Blocked => IssueResult::Blocked,
                },
            });
        }
        self.kstats.core_ticks += self.cores.len() as u64;
        self.kstats.steps += 1;
        self.now += 1;
    }

    /// Batch-execute core `i` over `[core_sync[i], to)` via
    /// [`Core::advance`], folding the span's cycle classes into the kernel
    /// counters and (when verifying) auditing the span's soundness.
    fn advance_core_to(&mut self, i: usize, to: u64) {
        let from = self.core_sync[i];
        if from >= to {
            return;
        }
        let out = self.cores[i].advance(from, to);
        self.kstats.core_stall_cycles += out.stall_cycles;
        self.kstats.core_wait_cycles += out.wait_cycles;
        self.kstats.core_cruise_cycles += out.cruise_cycles;
        self.kstats.core_replay_cycles += out.replayed_cycles;
        if let Some(oracle) = &mut self.oracle {
            oracle.note_span(i as u8, from, to, out.overrun_at);
        }
        self.core_sync[i] = to;
    }

    /// Bring every core's executed prefix up to `now` (measurement
    /// boundaries read per-core state such as [`Core::retired`], which is
    /// only exact once lazily-advanced spans are materialised).
    fn sync_all(&mut self) {
        let to = self.now;
        for i in 0..self.cores.len() {
            self.advance_core_to(i, to);
        }
    }

    /// Event-driven fast-forward: jump `now` to the earliest cycle any
    /// component can act — the memory side's cached `mem_wake` or any
    /// core's cached wake bound. A no-op whenever some component may act
    /// this cycle, so the execution that follows is untouched and
    /// statistics stay bit-identical to the cycle-driven kernel.
    fn jump_to_next_event(&mut self) {
        let now = self.now;
        let mut target = self.mem_wake;
        for &w in &self.core_wake {
            target = target.min(w);
        }
        let target = target.min(self.cfg.max_cycles);
        if target <= now {
            return;
        }
        self.kstats.cycles_skipped += target - now;
        if let Some(oracle) = &mut self.oracle {
            oracle.note_skip(now, target);
        }
        self.now = target;
    }

    /// One cycle of work, event-driven: the memory tick is elided while
    /// `now` is strictly below the cached `mem_wake` bound, and each core
    /// tick is elided while `now` is strictly below that core's cached
    /// wake bound — by construction those ticks are observable no-ops.
    /// Cores that do tick are first batch-advanced over the elided span
    /// (cores run mutually independent cycles between memory completions,
    /// so per-core lazy advancement composes: a woken or due core only
    /// needs *its own* past materialised, never a sibling's).
    fn step_event(&mut self) {
        let now = self.now;
        let mut ticked = false;
        if now >= self.mem_wake {
            self.woken_buf.clear();
            self.hierarchy.tick(now, &mut self.woken_buf);
            self.kstats.mem_tick_calls += 1;
            ticked = true;
            let woken = std::mem::take(&mut self.woken_buf);
            for w in &woken {
                let i = usize::from(w.core);
                // Materialise the core's past before mutating its ROB,
                // then force a real tick this cycle: the per-cycle kernel
                // delivers completions before ticking, so the woken core
                // retires/fetches at `now` exactly as it would there.
                self.advance_core_to(i, now);
                self.cores[i].complete_load(w.load_id, w.at);
                self.core_wake[i] = now;
            }
            self.woken_buf = woken;
        }
        let mut issued = false;
        for i in 0..self.cores.len() {
            if self.core_wake[i] > now {
                continue;
            }
            self.advance_core_to(i, now);
            let hier = &mut self.hierarchy;
            let core = &mut self.cores[i];
            let gen = &mut self.gens[i];
            core.tick(now, gen, &mut |op: MemOp| {
                issued = true;
                match op.kind {
                    MemOpKind::Load => match hier.load(op.core, op.pc, op.addr, now) {
                        AccessOutcome::Hit { complete_at } => IssueResult::Done { complete_at },
                        AccessOutcome::Miss { load_id } => IssueResult::Pending { load_id },
                        AccessOutcome::Blocked => IssueResult::Blocked,
                    },
                    MemOpKind::Store => match hier.store(op.core, op.pc, op.addr, now) {
                        StoreOutcome::Done => IssueResult::Done { complete_at: now + 1 },
                        StoreOutcome::Blocked => IssueResult::Blocked,
                    },
                }
            });
            self.kstats.core_ticks += 1;
            self.core_sync[i] = now + 1;
            // While tracing, cores must be ticked every cycle (spans
            // cannot emit trace events), so pin the wake to the next
            // cycle instead of consulting the activity bound.
            let wake = if self.cfg.trace { now + 1 } else { self.cores[i].next_wake(now + 1) };
            // The horizon fault only perturbs finite bounds: MAX means
            // "woken by memory alone", which the slack must not break.
            self.core_wake[i] = if wake == u64::MAX {
                u64::MAX
            } else {
                wake.saturating_add(self.fault_horizon_slack)
            };
        }
        // One recompute per step, after both the memory tick and the core
        // issue loop, so it sees the post-submit state. Only a memory tick
        // or a load/store that reached the backend (submit or blocked
        // submit attempt) can invalidate the cached bound; pure cache hits
        // leave the backend untouched and keep the cached value.
        let touched = issued && self.hierarchy.take_backend_touched();
        if ticked || touched {
            self.mem_wake = self
                .hierarchy
                .next_activity(now)
                .unwrap_or(u64::MAX)
                .saturating_add(self.fault_wake_slack);
        }
        self.kstats.steps += 1;
        self.now += 1;
    }

    /// True while the current window (warm-up or measurement) still has
    /// demand reads to issue and the cycle cap has not been hit.
    fn window_open(&self, reads: u64) -> bool {
        self.hierarchy.stats().demand_misses < reads && self.now < self.cfg.max_cycles
    }

    /// Close the warm-up window: materialise lazily-advanced core spans
    /// (event kernel), then snapshot every counter the final report will
    /// subtract.
    fn take_warm_snapshot(&mut self) {
        if self.cfg.kernel == Kernel::Event {
            // Measurement boundaries read per-core state; materialise
            // every lazily-advanced span up to the boundary cycle.
            self.sync_all();
        }
        let insts: Vec<u64> = self.cores.iter().map(Core::retired).collect();
        let cycles = self.now;
        // Close the open L1 hit streak so the snapshot's span counters
        // cover exactly the warm window and subtract cleanly at the end.
        self.hierarchy.flush_hit_streaks();
        let hier = *self.hierarchy.stats();
        let mem = self.hierarchy.memory_mut().stats(cycles);
        let cwf = self.hierarchy.memory().cwf_stats();
        self.warm = Some(WarmSnapshot { insts, cycles, hier, mem, cwf });
    }

    /// Close the measurement window and produce the report.
    fn finish(&mut self) -> RunMetrics {
        if self.cfg.kernel == Kernel::Event {
            self.sync_all();
        }
        let warm = self.warm.as_ref().expect("measurement follows the warm snapshot");
        let cycles = self.now - warm.cycles;
        let insts_per_core: Vec<u64> =
            self.cores.iter().zip(&warm.insts).map(|(c, w)| c.retired() - w).collect();
        self.hierarchy.flush_hit_streaks();
        let mut hier = *self.hierarchy.stats();
        hier.sub(&warm.hier);
        let mut mem_stats = self.hierarchy.memory_mut().stats(self.now);
        mem_stats.sub(&warm.mem);
        let warm_cwf = warm.cwf;
        let cwf = self.hierarchy.memory().cwf_stats().map(|mut c| {
            if let Some(w) = &warm_cwf {
                c.sub(w);
            }
            c
        });
        // Drain the observers' tails, then close the oracle's books:
        // the inclusive directory sweep and end-of-run refresh/fill
        // obligations.
        self.drain_observers();
        if self.oracle.is_some() {
            let inclusion = self.hierarchy.check_inclusion();
            let end = self.now;
            if let Some(oracle) = &mut self.oracle {
                oracle.note_inclusion_violations(end, &inclusion);
                oracle.finalize(end);
            }
        }
        RunMetrics {
            bench: self.bench.clone(),
            mem: self.cfg.mem,
            cycles,
            insts_per_core,
            dram_reads: hier.demand_misses,
            dram_writes: mem_stats.total_writes(),
            hier,
            mem_stats,
            cwf,
        }
    }

    /// Execute the configured warm-up + measurement windows and report.
    pub fn run(&mut self) -> RunMetrics {
        self.run_to_cycle(u64::MAX).expect("an unbounded run always completes")
    }

    /// Run until the measurement window closes, or pause at the first
    /// window-boundary cycle `>= stop_at` (returning `None`). A paused
    /// system sits between steps — [`System::save_ckpt`] captures it, and
    /// calling `run_to_cycle` again continues exactly where it stopped.
    ///
    /// This is the only run loop: the warm-up → measurement transition is
    /// a state (`warm`) rather than two nested loops, so a run can be cut
    /// at *any* cycle and later resumed with bit-identical results.
    pub fn run_to_cycle(&mut self, stop_at: u64) -> Option<RunMetrics> {
        loop {
            if self.warm.is_none() {
                if !self.window_open(self.cfg.warmup_dram_reads) {
                    self.take_warm_snapshot();
                    continue;
                }
            } else if !self.window_open(self.cfg.warmup_dram_reads + self.cfg.target_dram_reads) {
                return Some(self.finish());
            }
            if self.now >= stop_at {
                return None;
            }
            match self.cfg.kernel {
                Kernel::Cycle => self.step_cycle(),
                Kernel::Event => {
                    // The jump happens before the step, never after the
                    // step that satisfied the exit condition: both kernels
                    // must leave `now` at exactly `t_satisfy + 1`.
                    self.jump_to_next_event();
                    if self.now >= self.cfg.max_cycles {
                        continue;
                    }
                    self.step_event();
                }
            }
            // Bound the observer buffers on long runs.
            if self.observers_on() && self.kstats.steps & 0xFFFF == 0 {
                self.drain_observers();
            }
        }
    }
}

impl System {
    /// Serialize the complete mutable simulator state as a
    /// `cwfmem.ckpt.v1` blob (see DESIGN.md §16). The stream records only
    /// state, never configuration: [`System::from_ckpt`] rebuilds the
    /// machine from the embedded [`RunConfig`] and benchmark name, then
    /// overwrites every mutable field, so the resumed run is bit-identical
    /// to an uninterrupted one.
    ///
    /// Observability survives the split: the observers are drained first
    /// (so no layer holds undrained trace events), the oracle's state is
    /// embedded as before, and — when `cfg.trace` is on — the tracer's
    /// ring rides along in an additive trailing section, keyed off the
    /// `trace` flag already in the serialized [`RunConfig`]. Blobs from
    /// untraced runs are byte-identical to the pre-trace format.
    ///
    /// # Errors
    ///
    /// Fails when any component refuses to serialize.
    pub fn save_ckpt(&mut self) -> cwf_ckpt::Result<Vec<u8>> {
        use cwf_ckpt::Ckpt;
        self.drain_observers();
        let mut w = cwf_ckpt::Writer::new();
        w.put_bytes(CKPT_MAGIC);
        w.put_u32(CKPT_VERSION);
        self.cfg.save(&mut w);
        self.bench.save(&mut w);
        w.section(b"SYST");
        self.now.save(&mut w);
        self.mem_wake.save(&mut w);
        self.core_sync.save(&mut w);
        self.core_wake.save(&mut w);
        self.kstats.save(&mut w);
        self.warm.save(&mut w);
        self.fault_wake_slack.save(&mut w);
        self.fault_horizon_slack.save(&mut w);
        w.put_u64(self.cores.len() as u64);
        for core in &self.cores {
            core.save_ckpt(&mut w)?;
        }
        for gen in &self.gens {
            gen.save_ckpt(&mut w)?;
        }
        self.hierarchy.save_state(&mut w, |m, w| m.save_state(w))?;
        match &self.oracle {
            Some(oracle) => {
                w.put_u8(1);
                oracle.save_state(&mut w);
            }
            None => w.put_u8(0),
        }
        if let Some(tracer) = &self.tracer {
            w.section(b"TRCR");
            tracer.save_state(&mut w);
        }
        Ok(w.into_vec())
    }

    /// Rebuild a paused system from a [`System::save_ckpt`] blob. The run
    /// configuration and benchmark come from the blob itself; the machine
    /// is constructed fresh (`functional_warm_ops = 0` — the checkpoint
    /// already contains the warmed state) and every mutable field is then
    /// overwritten. Continue with [`System::run_to_cycle`] or
    /// [`System::run`].
    ///
    /// # Errors
    ///
    /// Fails on a bad magic/version, an unknown benchmark or memory kind,
    /// a geometry mismatch, or a malformed stream.
    pub fn from_ckpt(bytes: &[u8]) -> cwf_ckpt::Result<System> {
        use cwf_ckpt::Ckpt;
        let mut r = cwf_ckpt::Reader::new(bytes);
        let magic = r.get_bytes(CKPT_MAGIC.len())?;
        if magic != CKPT_MAGIC {
            return Err(cwf_ckpt::CkptError::new("not a cwfmem.ckpt.v1 blob (bad magic)"));
        }
        let version = r.get_u32()?;
        if version != CKPT_VERSION {
            return Err(cwf_ckpt::CkptError::new(format!(
                "unsupported checkpoint version {version} (expected {CKPT_VERSION})"
            )));
        }
        let cfg = RunConfig::load(&mut r)?;
        let bench = String::load(&mut r)?;
        let profile = workloads::by_name(&bench).ok_or_else(|| {
            cwf_ckpt::CkptError::new(format!("checkpoint names unknown benchmark '{bench}'"))
        })?;
        let mut build_cfg = cfg;
        build_cfg.functional_warm_ops = 0;
        let mut sys = System::new(&build_cfg, profile);
        sys.cfg = cfg;
        sys.load_ckpt_body(&mut r)?;
        r.finish()?;
        Ok(sys)
    }

    /// Restore everything after the header into this freshly built system.
    fn load_ckpt_body(&mut self, r: &mut cwf_ckpt::Reader<'_>) -> cwf_ckpt::Result<()> {
        use cwf_ckpt::Ckpt;
        r.expect_section(b"SYST")?;
        self.now = u64::load(r)?;
        self.mem_wake = u64::load(r)?;
        let core_sync: Vec<u64> = Ckpt::load(r)?;
        let core_wake: Vec<u64> = Ckpt::load(r)?;
        if core_sync.len() != self.cores.len() || core_wake.len() != self.cores.len() {
            return Err(cwf_ckpt::CkptError::new("core count mismatch"));
        }
        self.core_sync = core_sync;
        self.core_wake = core_wake;
        self.kstats = KernelStats::load(r)?;
        if self.kstats.kernel != self.cfg.kernel {
            return Err(cwf_ckpt::CkptError::new("kernel stats disagree with run config"));
        }
        self.warm = Option::<WarmSnapshot>::load(r)?;
        self.fault_wake_slack = u64::load(r)?;
        self.fault_horizon_slack = u64::load(r)?;
        let n_cores = r.get_u64()?;
        if n_cores != self.cores.len() as u64 {
            return Err(cwf_ckpt::CkptError::new("core count mismatch"));
        }
        for core in &mut self.cores {
            core.load_ckpt(r)?;
        }
        for gen in &mut self.gens {
            gen.load_ckpt(r)?;
        }
        self.hierarchy.load_state(r, |m, r| m.load_state(r))?;
        match r.get_u8()? {
            1 => match &mut self.oracle {
                Some(oracle) => oracle.load_state(r)?,
                None => {
                    return Err(cwf_ckpt::CkptError::new(
                        "checkpoint has oracle state but verify is off",
                    ))
                }
            },
            0 => {
                if self.oracle.is_some() {
                    return Err(cwf_ckpt::CkptError::new(
                        "verify is on but the checkpoint has no oracle state",
                    ));
                }
            }
            v => return Err(cwf_ckpt::CkptError::new(format!("invalid oracle tag {v}"))),
        }
        // The tracer section exists exactly when the run was traced
        // (`cfg.trace` travelled in the header, which also built
        // `self.tracer`), so untraced pre-trace blobs parse unchanged.
        if let Some(tracer) = &mut self.tracer {
            r.expect_section(b"TRCR")?;
            tracer.load_state(r)?;
        }
        self.woken_buf.clear();
        self.audit_buf.clear();
        self.trace_buf.clear();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MemKind;
    use workloads::by_name;

    #[test]
    fn system_makes_forward_progress() {
        let cfg = RunConfig::quick(MemKind::Ddr3, 500);
        let mut sys = System::new(&cfg, by_name("libquantum").unwrap());
        let m = sys.run();
        assert!(m.dram_reads >= 500);
        assert!(m.ipc_total() > 0.0);
        assert!(m.cycles > 0);
    }

    #[test]
    fn cwf_backend_reports_cwf_stats() {
        let cfg = RunConfig::quick(MemKind::Rl, 400);
        let m = System::new(&cfg, by_name("stream").unwrap()).run();
        let cwf = m.cwf.expect("RL is a CWF organization");
        assert!(cwf.demand_reads > 0);
        assert!(cwf.served_fast_fraction() > 0.5, "stream is word-0 dominated");
        let base =
            System::new(&RunConfig::quick(MemKind::Ddr3, 400), by_name("stream").unwrap()).run();
        assert!(base.cwf.is_none());
    }

    #[test]
    fn determinism_end_to_end() {
        let cfg = RunConfig::quick(MemKind::Rl, 300);
        let p = by_name("mcf").unwrap();
        let a = System::new(&cfg, p).run();
        let b = System::new(&cfg, p).run();
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.insts_per_core, b.insts_per_core);
        assert_eq!(a.dram_reads, b.dram_reads);
    }

    #[test]
    fn event_kernel_matches_cycle_kernel() {
        let p = by_name("stream").unwrap();
        let mut cy = RunConfig::quick(MemKind::Lpddr2, 300);
        cy.kernel = Kernel::Cycle;
        let mut ev = cy;
        ev.kernel = Kernel::Event;
        let mut sys_c = System::new(&cy, p);
        let mc = sys_c.run();
        let kc = sys_c.kernel_stats();
        let mut sys_e = System::new(&ev, p);
        let me = sys_e.run();
        let ke = sys_e.kernel_stats();
        assert_eq!(mc.cycles, me.cycles);
        assert_eq!(mc.insts_per_core, me.insts_per_core);
        assert_eq!(mc.dram_reads, me.dram_reads);
        assert_eq!(mc.hier.blocked_mshr, me.hier.blocked_mshr);
        // Cycle kernel ticks memory every step; event kernel strictly less.
        assert_eq!(kc.mem_tick_calls, kc.steps);
        assert_eq!(kc.simulated_cycles(), ke.simulated_cycles());
        assert!(ke.mem_tick_calls < kc.mem_tick_calls);
        assert!(ke.tick_ratio() > 1.0, "ratio {}", ke.tick_ratio());
        // Cycle kernel ticks every core every step; event kernel covers
        // the same core-cycles with strictly fewer real ticks, the rest
        // batched into spans. After the end-of-window sync, ticks + span
        // cycles account for every core-cycle exactly.
        assert_eq!(kc.core_ticks, kc.steps * u64::from(cy.cores));
        assert_eq!(kc.core_span_cycles(), 0);
        assert_eq!(
            ke.core_ticks + ke.core_span_cycles(),
            ke.simulated_cycles() * u64::from(ev.cores)
        );
        assert!(ke.core_ticks < kc.core_ticks);
        assert!(ke.core_tick_ratio() > 1.0, "core ratio {}", ke.core_tick_ratio());
    }

    #[test]
    fn checkpoint_roundtrip_resumes_bit_identical() {
        // The tentpole contract: split a verified run at an arbitrary
        // cycle, serialize, restore into a fresh process-equivalent
        // system, and the finished report is byte-identical to the
        // uninterrupted run — on both kernels.
        for kernel in [Kernel::Cycle, Kernel::Event] {
            let mut cfg = RunConfig::quick(MemKind::Rl, 250);
            cfg.kernel = kernel;
            cfg.verify = true;
            cfg.trace = false;
            let p = by_name("mcf").unwrap();
            let mut whole = System::new(&cfg, p);
            let m_whole = whole.run();
            let j_whole = crate::report::to_json_verified(
                &m_whole,
                &whole.kernel_stats(),
                &whole.verify_report().unwrap(),
            );

            let split = whole.now() / 2;
            let mut first = System::new(&cfg, p);
            assert!(first.run_to_cycle(split).is_none(), "split {split} is inside the run");
            let blob = first.save_ckpt().expect("checkpoint serializes");
            let mut resumed = System::from_ckpt(&blob).expect("checkpoint restores");
            let m_res = resumed.run();
            let j_res = crate::report::to_json_verified(
                &m_res,
                &resumed.kernel_stats(),
                &resumed.verify_report().unwrap(),
            );
            assert_eq!(j_whole, j_res, "kernel {kernel:?}");
        }
    }

    #[test]
    fn checkpoint_carries_the_trace_ring() {
        let mut cfg = RunConfig::quick(MemKind::Ddr3, 100);
        cfg.trace = true;
        let mut sys = System::new(&cfg, by_name("stream").unwrap());
        let _ = sys.run_to_cycle(2_000);
        // save_ckpt drains the observers first, so the ring at save time
        // holds everything the layers had buffered — and the restored
        // ring must hold exactly that.
        let blob = sys.save_ckpt().expect("traced runs checkpoint");
        let at_save = sys.trace_report().expect("tracer on").events;
        assert!(!at_save.is_empty(), "a live run collects trace events");
        let resumed = System::from_ckpt(&blob).expect("traced checkpoint restores");
        let restored = resumed.trace_report().expect("tracer restored");
        assert_eq!(restored.events, at_save);
        assert_eq!(restored.dropped, 0);
    }

    #[test]
    fn checkpoint_rejects_corruption() {
        let cfg = RunConfig::quick(MemKind::Ddr3, 100);
        let mut sys = System::new(&cfg, by_name("stream").unwrap());
        let _ = sys.run_to_cycle(50);
        let blob = sys.save_ckpt().unwrap();
        // Bad magic.
        let mut bad = blob.clone();
        bad[0] ^= 0xFF;
        assert!(System::from_ckpt(&bad).is_err());
        // Truncation.
        assert!(System::from_ckpt(&blob[..blob.len() - 1]).is_err());
        // Trailing garbage.
        let mut long = blob;
        long.push(0);
        assert!(System::from_ckpt(&long).is_err());
    }

    #[test]
    fn warmup_window_is_excluded() {
        let p = by_name("libquantum").unwrap();
        let mut with_warm = RunConfig::quick(MemKind::Ddr3, 400);
        with_warm.warmup_dram_reads = 200;
        let m = System::new(&with_warm, p).run();
        // Measured reads ≈ target, not target + warmup.
        assert!(m.dram_reads >= 400 && m.dram_reads < 500, "reads {}", m.dram_reads);
    }
}
