//! The full-system simulator: cores + hierarchy + memory, one CPU-cycle
//! master clock, with warm-up/measurement windows.

use cache_hier::{AccessOutcome, HierParams, HierStats, Hierarchy, StoreOutcome, Woken};
use cpu_model::{Core, CoreParams, IssueResult, MemOp, MemOpKind, TraceSource};
use mem_ctrl::{ControllerStats, MainMemory, MemSystemStats};
use workloads::{BenchmarkProfile, TraceGen};

/// A boxed, sendable trace source (synthetic generator or file replay).
pub type BoxedTrace = Box<dyn TraceSource + Send>;

use crate::config::{MemBackend, RunConfig};
use crate::metrics::RunMetrics;

/// A complete simulated machine for one benchmark run.
pub struct System {
    cfg: RunConfig,
    bench: String,
    cores: Vec<Core>,
    gens: Vec<BoxedTrace>,
    hierarchy: Hierarchy<MemBackend>,
    now: u64,
    woken_buf: Vec<Woken>,
}

impl System {
    /// Build a system for `profile` under `cfg`.
    #[must_use]
    pub fn new(cfg: &RunConfig, profile: &BenchmarkProfile) -> Self {
        let backend = cfg.mem.build(cfg.parity_error_rate, cfg.seed);
        Self::with_backend(cfg, profile, backend)
    }

    /// Build with an explicit backend (page-placement experiments).
    #[must_use]
    pub fn with_backend(cfg: &RunConfig, profile: &BenchmarkProfile, backend: MemBackend) -> Self {
        let gens: Vec<BoxedTrace> = (0..cfg.cores)
            .map(|i| Box::new(TraceGen::new(profile, i, cfg.seed)) as BoxedTrace)
            .collect();
        let mut sys = Self::with_trace_sources(cfg, profile.name, gens, backend);
        // Adaptive placement: install the converged layout (every line the
        // workload regularly writes has been re-organised long before our
        // scaled-down measurement window — see DESIGN.md §4).
        let p = profile.clone();
        sys.hierarchy.memory_mut().set_steady_state_placement(Box::new(move |addr| {
            workloads::steady_state_tag(&p, addr)
        }));
        sys
    }

    /// Build from arbitrary per-core trace sources (e.g. file replays via
    /// [`workloads::FileTraceSource`]). No adaptive steady state is seeded
    /// — external traces carry no workload model.
    ///
    /// # Panics
    ///
    /// Panics if `sources.len() != cfg.cores`.
    #[must_use]
    pub fn with_trace_sources(
        cfg: &RunConfig,
        name: &str,
        sources: Vec<BoxedTrace>,
        backend: MemBackend,
    ) -> Self {
        assert_eq!(sources.len(), usize::from(cfg.cores), "one trace per core");
        let mut hp = if cfg.prefetch {
            HierParams::paper_default(cfg.cores)
        } else {
            HierParams::no_prefetch(cfg.cores)
        };
        hp.cores = cfg.cores;
        let mut sys = System {
            cores: (0..cfg.cores).map(|i| Core::new(i, CoreParams::paper_default())).collect(),
            gens: sources,
            hierarchy: Hierarchy::new(hp, backend),
            now: 0,
            woken_buf: Vec::new(),
            cfg: *cfg,
            bench: name.to_owned(),
        };
        sys.functional_warm(cfg.functional_warm_ops);
        sys
    }

    /// Timing-free cache warming: advance every core's trace by
    /// `ops_per_core` memory operations through the functional cache model,
    /// replaying dirty evictions into the backend's adaptive placement
    /// state. This is the scaled-down analogue of the paper's fast-forward
    /// + 5 M-cycle warm-up (§5); the timed run then continues from the
    /// warmed generators, so the L2 content matches the instruction stream
    /// about to execute.
    fn functional_warm(&mut self, ops_per_core: u64) {
        use cpu_model::TraceOp;
        let mut evictions: Vec<(u64, u8)> = Vec::new();
        for (core, gen) in self.gens.iter_mut().enumerate() {
            let mut done = 0;
            while done < ops_per_core {
                match gen.next_op() {
                    TraceOp::Gap(_) => {}
                    TraceOp::Load { addr, .. } => {
                        self.hierarchy.warm_access(core as u8, addr, false, &mut |l, w| {
                            evictions.push((l, w));
                        });
                        done += 1;
                    }
                    TraceOp::Store { addr, .. } => {
                        self.hierarchy.warm_access(core as u8, addr, true, &mut |l, w| {
                            evictions.push((l, w));
                        });
                        done += 1;
                    }
                }
                if evictions.len() >= 1024 {
                    for (l, w) in evictions.drain(..) {
                        self.hierarchy.memory_mut().seed_adaptive_tag(l, w);
                    }
                }
            }
        }
        for (l, w) in evictions.drain(..) {
            self.hierarchy.memory_mut().seed_adaptive_tag(l, w);
        }
    }

    /// Current CPU cycle.
    #[must_use]
    pub fn now(&self) -> u64 {
        self.now
    }

    /// The hierarchy (statistics access).
    #[must_use]
    pub fn hierarchy(&self) -> &Hierarchy<MemBackend> {
        &self.hierarchy
    }

    /// Advance one CPU cycle.
    pub fn step(&mut self) {
        let now = self.now;
        self.woken_buf.clear();
        self.hierarchy.tick(now, &mut self.woken_buf);
        for w in &self.woken_buf {
            self.cores[usize::from(w.core)].complete_load(w.load_id, w.at);
        }
        let hier = &mut self.hierarchy;
        for (core, gen) in self.cores.iter_mut().zip(self.gens.iter_mut()) {
            core.tick(now, gen, &mut |op: MemOp| match op.kind {
                MemOpKind::Load => match hier.load(op.core, op.pc, op.addr, now) {
                    AccessOutcome::Hit { complete_at } => IssueResult::Done { complete_at },
                    AccessOutcome::Miss { load_id } => IssueResult::Pending { load_id },
                    AccessOutcome::Blocked => IssueResult::Blocked,
                },
                MemOpKind::Store => match hier.store(op.core, op.pc, op.addr, now) {
                    StoreOutcome::Done => IssueResult::Done { complete_at: now + 1 },
                    StoreOutcome::Blocked => IssueResult::Blocked,
                },
            });
        }
        self.now += 1;
    }

    /// Run until `reads` demand DRAM reads have been issued (or the cycle
    /// cap is hit). Returns the cycle count consumed.
    fn run_until_reads(&mut self, reads: u64) -> u64 {
        let start = self.now;
        while self.hierarchy.stats().demand_misses < reads && self.now < self.cfg.max_cycles {
            self.step();
        }
        self.now - start
    }

    /// Execute the configured warm-up + measurement windows and report.
    pub fn run(&mut self) -> RunMetrics {
        // Warm-up.
        self.run_until_reads(self.cfg.warmup_dram_reads);
        let warm_insts: Vec<u64> = self.cores.iter().map(Core::retired).collect();
        let warm_cycles = self.now;
        let warm_hier = *self.hierarchy.stats();
        let warm_mem = self.hierarchy.memory_mut().stats(self.now);
        let warm_cwf = self.hierarchy.memory().cwf_stats();

        // Measurement.
        self.run_until_reads(self.cfg.warmup_dram_reads + self.cfg.target_dram_reads);

        let cycles = self.now - warm_cycles;
        let insts_per_core: Vec<u64> =
            self.cores.iter().zip(&warm_insts).map(|(c, w)| c.retired() - w).collect();
        let hier = hier_delta(self.hierarchy.stats(), &warm_hier);
        let mem_stats = mem_delta(&self.hierarchy.memory_mut().stats(self.now), &warm_mem);
        let cwf = match (self.hierarchy.memory().cwf_stats(), warm_cwf) {
            (Some(now), Some(warm)) => Some(cwf_delta(&now, &warm)),
            (now, _) => now,
        };
        RunMetrics {
            bench: self.bench.clone(),
            mem: self.cfg.mem,
            cycles,
            insts_per_core,
            dram_reads: hier.demand_misses,
            dram_writes: mem_stats.total_writes(),
            hier,
            mem_stats,
            cwf,
        }
    }
}

fn hier_delta(now: &HierStats, warm: &HierStats) -> HierStats {
    let mut hist = [0u64; 8];
    for i in 0..8 {
        hist[i] = now.critical_word_hist[i] - warm.critical_word_hist[i];
    }
    let mut cw_lat_hist = now.cw_lat_hist;
    cw_lat_hist.sub(&warm.cw_lat_hist);
    HierStats {
        loads: now.loads - warm.loads,
        stores: now.stores - warm.stores,
        l1_hits: now.l1_hits - warm.l1_hits,
        l2_hits: now.l2_hits - warm.l2_hits,
        mshr_secondary: now.mshr_secondary - warm.mshr_secondary,
        demand_misses: now.demand_misses - warm.demand_misses,
        blocked_mshr: now.blocked_mshr - warm.blocked_mshr,
        blocked_mem: now.blocked_mem - warm.blocked_mem,
        prefetches_issued: now.prefetches_issued - warm.prefetches_issued,
        prefetches_useful: now.prefetches_useful - warm.prefetches_useful,
        writebacks: now.writebacks - warm.writebacks,
        fills: now.fills - warm.fills,
        demand_fills: now.demand_fills - warm.demand_fills,
        cw_latency_sum: now.cw_latency_sum - warm.cw_latency_sum,
        cw_lat_hist,
        cw_served_fast: now.cw_served_fast - warm.cw_served_fast,
        secondary_diff_word: now.secondary_diff_word - warm.secondary_diff_word,
        secondary_gap_sum: now.secondary_gap_sum - warm.secondary_gap_sum,
        critical_word_hist: hist,
    }
}

fn mem_delta(now: &MemSystemStats, warm: &MemSystemStats) -> MemSystemStats {
    let controllers = now
        .controllers
        .iter()
        .zip(&warm.controllers)
        .map(|(n, w)| {
            debug_assert_eq!(n.label, w.label, "controller order must be stable");
            let mut channel = n.channel;
            channel.sub(&w.channel);
            let mut residency = n.residency;
            let wr = &w.residency;
            residency.active_standby -= wr.active_standby;
            residency.precharge_standby -= wr.precharge_standby;
            residency.active_powerdown -= wr.active_powerdown;
            residency.precharge_powerdown -= wr.precharge_powerdown;
            residency.self_refresh -= wr.self_refresh;
            ControllerStats {
                kind: n.kind,
                label: n.label.clone(),
                chips_per_access: n.chips_per_access,
                mem_cycles: n.mem_cycles - w.mem_cycles,
                t_ck_ps: n.t_ck_ps,
                channel,
                residency,
                ranks: n.ranks,
                reads_done: n.reads_done - w.reads_done,
                writes_done: n.writes_done - w.writes_done,
                sum_queue_ns: n.sum_queue_ns - w.sum_queue_ns,
                sum_service_ns: n.sum_service_ns - w.sum_service_ns,
                read_lat_hist: {
                    let mut h = n.read_lat_hist;
                    h.sub(&w.read_lat_hist);
                    h
                },
            }
        })
        .collect();
    MemSystemStats { controllers }
}

fn cwf_delta(now: &cwf_core::CwfStats, warm: &cwf_core::CwfStats) -> cwf_core::CwfStats {
    cwf_core::CwfStats {
        demand_reads: now.demand_reads - warm.demand_reads,
        cw_served_fast: now.cw_served_fast - warm.cw_served_fast,
        parity_errors: now.parity_errors - warm.parity_errors,
        fast_first: now.fast_first - warm.fast_first,
        gap_cpu_cycles: now.gap_cpu_cycles - warm.gap_cpu_cycles,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MemKind;
    use workloads::by_name;

    #[test]
    fn system_makes_forward_progress() {
        let cfg = RunConfig::quick(MemKind::Ddr3, 500);
        let mut sys = System::new(&cfg, by_name("libquantum").unwrap());
        let m = sys.run();
        assert!(m.dram_reads >= 500);
        assert!(m.ipc_total() > 0.0);
        assert!(m.cycles > 0);
    }

    #[test]
    fn cwf_backend_reports_cwf_stats() {
        let cfg = RunConfig::quick(MemKind::Rl, 400);
        let m = System::new(&cfg, by_name("stream").unwrap()).run();
        let cwf = m.cwf.expect("RL is a CWF organization");
        assert!(cwf.demand_reads > 0);
        assert!(cwf.served_fast_fraction() > 0.5, "stream is word-0 dominated");
        let base =
            System::new(&RunConfig::quick(MemKind::Ddr3, 400), by_name("stream").unwrap()).run();
        assert!(base.cwf.is_none());
    }

    #[test]
    fn determinism_end_to_end() {
        let cfg = RunConfig::quick(MemKind::Rl, 300);
        let p = by_name("mcf").unwrap();
        let a = System::new(&cfg, p).run();
        let b = System::new(&cfg, p).run();
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.insts_per_core, b.insts_per_core);
        assert_eq!(a.dram_reads, b.dram_reads);
    }

    #[test]
    fn warmup_window_is_excluded() {
        let p = by_name("libquantum").unwrap();
        let mut with_warm = RunConfig::quick(MemKind::Ddr3, 400);
        with_warm.warmup_dram_reads = 200;
        let m = System::new(&with_warm, p).run();
        // Measured reads ≈ target, not target + warmup.
        assert!(m.dram_reads >= 400 && m.dram_reads < 500, "reads {}", m.dram_reads);
    }
}
