//! Benchmark runners and the paper's throughput metric.

use workloads::by_name;

use crate::config::{MemKind, RunConfig};
use crate::metrics::RunMetrics;
use crate::system::{KernelStats, System};

/// Run one benchmark under `cfg`.
///
/// # Panics
///
/// Panics if `bench` is not one of the 27 suite programs or the
/// `dcsweep`/`dcthrash`/`dcresident` DRAM-cache stressors.
#[must_use]
pub fn run_benchmark(cfg: &RunConfig, bench: &str) -> RunMetrics {
    run_benchmark_diag(cfg, bench).0
}

/// Run one benchmark under `cfg`, also returning the kernel's execution
/// counters (tick-call counts, skipped cycles). The metrics half is
/// identical to [`run_benchmark`] — the diagnostics ride alongside, never
/// inside, [`RunMetrics`].
///
/// # Panics
///
/// Panics if `bench` is not one of the 27 suite programs or the
/// `dcsweep`/`dcthrash`/`dcresident` DRAM-cache stressors.
#[must_use]
pub fn run_benchmark_diag(cfg: &RunConfig, bench: &str) -> (RunMetrics, KernelStats) {
    let profile = by_name(bench)
        .unwrap_or_else(|| panic!("unknown benchmark '{bench}' (see workloads::suite())"));
    let mut sys = System::new(cfg, profile);
    let metrics = sys.run();
    (metrics, sys.kernel_stats())
}

/// Run one benchmark under `cfg`, also returning the verify oracle's
/// report (`None` when `cfg.verify` is off). Metrics are bit-identical to
/// [`run_benchmark`] — the oracle observes, never steers.
///
/// # Panics
///
/// Panics if `bench` is not one of the 27 suite programs or the
/// `dcsweep`/`dcthrash`/`dcresident` DRAM-cache stressors.
#[must_use]
pub fn run_benchmark_verified(
    cfg: &RunConfig,
    bench: &str,
) -> (RunMetrics, KernelStats, Option<cwf_verify::VerifyReport>) {
    let profile = by_name(bench)
        .unwrap_or_else(|| panic!("unknown benchmark '{bench}' (see workloads::suite())"));
    let mut sys = System::new(cfg, profile);
    let metrics = sys.run();
    (metrics, sys.kernel_stats(), sys.verify_report())
}

/// Run one benchmark under `cfg`, also returning the collected trace
/// (`None` when `cfg.trace` is off) and, when `cfg.verify` is on, the
/// oracle's report. Metrics are bit-identical to [`run_benchmark`] — the
/// tracer observes, never steers.
///
/// # Panics
///
/// Panics if `bench` is not one of the 27 suite programs or the
/// `dcsweep`/`dcthrash`/`dcresident` DRAM-cache stressors.
#[must_use]
pub fn run_benchmark_traced(
    cfg: &RunConfig,
    bench: &str,
) -> (RunMetrics, KernelStats, Option<cwf_verify::VerifyReport>, Option<crate::trace::TraceReport>)
{
    let profile = by_name(bench)
        .unwrap_or_else(|| panic!("unknown benchmark '{bench}' (see workloads::suite())"));
    let mut sys = System::new(cfg, profile);
    let metrics = sys.run();
    (metrics, sys.kernel_stats(), sys.verify_report(), sys.trace_report())
}

/// Run one benchmark under `cfg` on an explicit, pre-built memory backend
/// (e.g. a `--spec file.toml` homogeneous memory whose device config came
/// from disk rather than a [`MemKind`] preset). Same return shape as
/// [`run_benchmark_traced`].
///
/// # Panics
///
/// Panics if `bench` is not one of the 27 suite programs or the
/// `dcsweep`/`dcthrash`/`dcresident` DRAM-cache stressors.
#[must_use]
pub fn run_benchmark_traced_with_backend(
    cfg: &RunConfig,
    bench: &str,
    backend: crate::config::MemBackend,
) -> (RunMetrics, KernelStats, Option<cwf_verify::VerifyReport>, Option<crate::trace::TraceReport>)
{
    let profile = by_name(bench)
        .unwrap_or_else(|| panic!("unknown benchmark '{bench}' (see workloads::suite())"));
    let mut sys = System::with_backend(cfg, profile, backend);
    let metrics = sys.run();
    (metrics, sys.kernel_stats(), sys.verify_report(), sys.trace_report())
}

/// Result of a checkpoint-bounded run segment ([`run_benchmark_ckpt`],
/// [`resume_benchmark_to_cycle`]): either the run completed inside the
/// segment, or it paused and serialized.
#[allow(clippy::large_enum_variant)] // one value per run segment; not stored in bulk
#[derive(Debug)]
pub enum CkptOutcome {
    /// The run finished before reaching the stop cycle.
    Finished {
        /// The run's metrics (identical to an unsegmented run).
        metrics: RunMetrics,
        /// Kernel execution counters.
        kernel: KernelStats,
        /// The verify oracle's report (`None` when `cfg.verify` is off).
        verify: Option<cwf_verify::VerifyReport>,
        /// The collected trace (`None` when `cfg.trace` is off).
        trace: Option<crate::trace::TraceReport>,
    },
    /// The run paused at the stop cycle; the blob resumes it.
    Paused {
        /// A `cwfmem.ckpt.v1` blob (see [`System::save_ckpt`]).
        ckpt: Vec<u8>,
    },
}

/// Run `bench` under `cfg`, pausing at the first cycle `>= stop_at`. A
/// paused run serializes to a `cwfmem.ckpt.v1` blob that
/// [`resume_benchmark`] continues with bit-identical results — the
/// verify oracle's books and the trace ring both ride the blob.
///
/// # Errors
///
/// Fails when `bench` is unknown or the paused state refuses to
/// serialize.
pub fn run_benchmark_ckpt(
    cfg: &RunConfig,
    bench: &str,
    stop_at: u64,
) -> cwf_ckpt::Result<CkptOutcome> {
    let profile = by_name(bench)
        .ok_or_else(|| cwf_ckpt::CkptError::new(format!("unknown benchmark '{bench}'")))?;
    let mut sys = System::new(cfg, profile);
    segment_outcome(sys.run_to_cycle(stop_at), sys)
}

/// Resume a checkpointed run to completion, returning what
/// [`run_benchmark_traced_with_backend`] would have for the
/// uninterrupted run: verify and trace reports are present exactly when
/// the checkpointed run had them enabled.
///
/// # Errors
///
/// Fails when the blob is malformed or disagrees with the workspace's
/// benchmark registry.
#[allow(clippy::type_complexity)] // mirrors run_benchmark_traced_with_backend
pub fn resume_benchmark(
    bytes: &[u8],
) -> cwf_ckpt::Result<(
    RunMetrics,
    KernelStats,
    Option<cwf_verify::VerifyReport>,
    Option<crate::trace::TraceReport>,
)> {
    let mut sys = System::from_ckpt(bytes)?;
    let metrics = sys.run();
    Ok((metrics, sys.kernel_stats(), sys.verify_report(), sys.trace_report()))
}

/// Resume a checkpointed run, pausing again at the first cycle
/// `>= stop_at` (segmented execution: a run can hop across any number of
/// processes).
///
/// # Errors
///
/// Fails when the blob is malformed or re-serialization fails.
pub fn resume_benchmark_to_cycle(bytes: &[u8], stop_at: u64) -> cwf_ckpt::Result<CkptOutcome> {
    let mut sys = System::from_ckpt(bytes)?;
    segment_outcome(sys.run_to_cycle(stop_at), sys)
}

/// Package a `run_to_cycle` result: finished runs report, paused runs
/// serialize.
fn segment_outcome(metrics: Option<RunMetrics>, mut sys: System) -> cwf_ckpt::Result<CkptOutcome> {
    match metrics {
        Some(metrics) => Ok(CkptOutcome::Finished {
            metrics,
            kernel: sys.kernel_stats(),
            verify: sys.verify_report(),
            trace: sys.trace_report(),
        }),
        None => Ok(CkptOutcome::Paused { ckpt: sys.save_ckpt()? }),
    }
}

/// The paper's system-throughput metric: `Σᵢ IPCᵢ_shared / IPCᵢ_alone`
/// (§5), where `IPC_alone` is measured on a single-core system with the
/// same memory organization.
#[must_use]
pub fn weighted_speedup(cfg: &RunConfig, bench: &str) -> f64 {
    let shared = run_benchmark(cfg, bench);
    let alone_cfg = RunConfig {
        cores: 1,
        // One core generates roughly 1/8th of the traffic; keep the run
        // length proportional so both runs see steady state.
        target_dram_reads: (cfg.target_dram_reads / u64::from(cfg.cores)).max(500),
        warmup_dram_reads: (cfg.warmup_dram_reads / u64::from(cfg.cores)).min(2_000),
        ..*cfg
    };
    let alone = run_benchmark(&alone_cfg, bench);
    let ipc_alone = alone.ipc_total().max(1e-9);
    shared.ipc_per_core().iter().map(|ipc| ipc / ipc_alone).sum()
}

/// Weighted speedup of `mem`, normalised to the DDR3 baseline — the
/// y-axis of Figures 1a, 6 and 9.
#[must_use]
pub fn normalized_throughput(cfg: &RunConfig, baseline: &RunConfig, bench: &str) -> f64 {
    let ws = weighted_speedup(cfg, bench);
    let ws_base = weighted_speedup(baseline, bench).max(1e-9);
    ws / ws_base
}

/// Run `f` for every (benchmark, config) pair across worker threads and
/// return results in input order. Simulations are independent, so this is
/// the safe coarse-grained parallelism the harness uses. The worker
/// count honours `CWF_JOBS` (see [`crate::sweep::jobs`]).
pub fn parallel_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send + Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let workers = crate::sweep::jobs();
    let n = items.len();
    let mut out: Vec<Option<R>> = (0..n).map(|_| None).collect();
    let next = std::sync::atomic::AtomicUsize::new(0);
    let slots: Vec<std::sync::Mutex<Option<R>>> =
        (0..n).map(|_| std::sync::Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers.min(n.max(1)) {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let r = f(&items[i]);
                *slots[i].lock().expect("poisoned slot") = Some(r);
            });
        }
    });
    for (o, s) in out.iter_mut().zip(slots) {
        *o = s.into_inner().expect("poisoned slot");
    }
    out.into_iter().map(|o| o.expect("every slot filled")).collect()
}

/// Memory kind of this run's `mem` field wrapped for `parallel_map` use.
#[must_use]
pub fn mem_of(metrics: &RunMetrics) -> MemKind {
    metrics.mem
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weighted_speedup_is_near_core_count_for_light_sharing() {
        // A compute-heavy benchmark: each core barely interferes, so the
        // weighted speedup approaches the core count (needs a warmed run;
        // cold-start windows under-estimate IPC_shared).
        let cfg = RunConfig::paper(MemKind::Ddr3, 2_000).with_cores(2);
        let ws = weighted_speedup(&cfg, "gobmk");
        assert!(ws > 1.4 && ws <= f64::from(cfg.cores) * 1.2, "ws = {ws}");
    }

    #[test]
    #[should_panic(expected = "unknown benchmark")]
    fn unknown_benchmark_panics() {
        let _ = run_benchmark(&RunConfig::quick(MemKind::Ddr3, 10), "doom");
    }

    #[test]
    fn parallel_map_preserves_order() {
        let cfg = RunConfig::quick(MemKind::Ddr3, 150);
        let items = vec!["stream", "mcf", "gobmk"];
        let out = parallel_map(items.clone(), |b| run_benchmark(&cfg, b));
        for (name, m) in items.iter().zip(&out) {
            assert_eq!(*name, m.bench);
        }
    }
}
