//! Plain-text table rendering for the experiment drivers.

/// A printable table: title, column headers, rows of cells.
#[derive(Debug, Clone, Default)]
pub struct Table {
    /// Table caption (e.g. `"Figure 6: normalized throughput"`).
    pub title: String,
    /// Column headers.
    pub columns: Vec<String>,
    /// Data rows (each the same arity as `columns`).
    pub rows: Vec<Vec<String>>,
    /// Footnotes printed after the body.
    pub notes: Vec<String>,
}

impl Table {
    /// Create an empty table.
    #[must_use]
    pub fn new(title: &str, columns: &[&str]) -> Self {
        Table {
            title: title.to_owned(),
            columns: columns.iter().map(|c| (*c).to_owned()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Append a row.
    ///
    /// # Panics
    ///
    /// Panics if the arity differs from the header.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.columns.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Append a footnote.
    pub fn note(&mut self, note: &str) {
        self.notes.push(note.to_owned());
    }

    /// Render as an aligned plain-text table.
    #[must_use]
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let fmt_row = |cells: &[String]| -> String {
            let mut line = String::new();
            for (i, (cell, w)) in cells.iter().zip(&widths).enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                // Right-align numeric-looking cells, left-align labels.
                if cell.parse::<f64>().is_ok() || cell.ends_with('%') {
                    line.push_str(&format!("{cell:>w$}"));
                } else {
                    line.push_str(&format!("{cell:<w$}"));
                }
            }
            line
        };
        out.push_str(&fmt_row(&self.columns));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        for note in &self.notes {
            out.push_str(&format!("note: {note}\n"));
        }
        out
    }
}

impl Table {
    /// Render as CSV (header row + data rows; RFC-4180 quoting).
    #[must_use]
    pub fn to_csv(&self) -> String {
        let quote = |cell: &str| -> String {
            if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_owned()
            }
        };
        let mut out = String::new();
        out.push_str(&self.columns.iter().map(|c| quote(c)).collect::<Vec<_>>().join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| quote(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }

    /// Write the table as `<dir>/<slug>.csv`, deriving the slug from the
    /// title. Returns the path written.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write_csv(&self, dir: &std::path::Path) -> std::io::Result<std::path::PathBuf> {
        let slug: String = self
            .title
            .chars()
            .take_while(|c| *c != ':')
            .map(|c| if c.is_alphanumeric() { c.to_ascii_lowercase() } else { '_' })
            .collect();
        let path = dir.join(format!("{slug}.csv"));
        std::fs::create_dir_all(dir)?;
        std::fs::write(&path, self.to_csv())?;
        Ok(path)
    }
}

impl std::fmt::Display for Table {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.render())
    }
}

/// Format a ratio as a signed percentage delta (e.g. `+12.9%`).
#[must_use]
pub fn pct_delta(ratio: f64) -> String {
    format!("{:+.1}%", (ratio - 1.0) * 100.0)
}

/// Format a fraction as a percentage (e.g. `67.2%`).
#[must_use]
pub fn pct(fraction: f64) -> String {
    format!("{:.1}%", fraction * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_and_includes_everything() {
        let mut t = Table::new("Demo", &["bench", "value"]);
        t.row(vec!["stream".into(), "1.31".into()]);
        t.row(vec!["mcf".into(), "0.99".into()]);
        t.note("numbers are ratios");
        let s = t.render();
        assert!(s.contains("== Demo =="));
        assert!(s.contains("stream"));
        assert!(s.contains("note: numbers are ratios"));
        // Aligned: both value cells end at the same column.
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn arity_is_checked() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(vec!["only one".into()]);
    }

    #[test]
    fn csv_rendering_quotes_and_escapes() {
        let mut t = Table::new("Figure 6: demo, with comma", &["bench", "x"]);
        t.row(vec!["a,b".into(), "1.5".into()]);
        t.row(vec!["plain".into(), "2".into()]);
        let csv = t.to_csv();
        assert_eq!(csv.lines().count(), 3);
        assert!(csv.contains("\"a,b\""));
        assert!(csv.starts_with("bench,x"));
    }

    #[test]
    fn csv_file_roundtrip() {
        let dir = std::env::temp_dir().join("cwfmem_csv_test");
        let mut t = Table::new("Figure 9: placement", &["a"]);
        t.row(vec!["1".into()]);
        let path = t.write_csv(&dir).expect("write");
        assert!(path.file_name().unwrap().to_str().unwrap().starts_with("figure_9"));
        let body = std::fs::read_to_string(path).expect("read");
        assert_eq!(body, "a\n1\n");
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn percentage_helpers() {
        assert_eq!(pct_delta(1.129), "+12.9%");
        assert_eq!(pct_delta(0.91), "-9.0%");
        assert_eq!(pct(0.672), "67.2%");
    }
}
