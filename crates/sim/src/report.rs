//! Plain-text table rendering for the experiment drivers.

/// A printable table: title, column headers, rows of cells.
#[derive(Debug, Clone, Default)]
pub struct Table {
    /// Table caption (e.g. `"Figure 6: normalized throughput"`).
    pub title: String,
    /// Column headers.
    pub columns: Vec<String>,
    /// Data rows (each the same arity as `columns`).
    pub rows: Vec<Vec<String>>,
    /// Footnotes printed after the body.
    pub notes: Vec<String>,
}

impl Table {
    /// Create an empty table.
    #[must_use]
    pub fn new(title: &str, columns: &[&str]) -> Self {
        Table {
            title: title.to_owned(),
            columns: columns.iter().map(|c| (*c).to_owned()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Append a row.
    ///
    /// # Panics
    ///
    /// Panics if the arity differs from the header.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.columns.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Append a footnote.
    pub fn note(&mut self, note: &str) {
        self.notes.push(note.to_owned());
    }

    /// Render as an aligned plain-text table.
    #[must_use]
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let fmt_row = |cells: &[String]| -> String {
            let mut line = String::new();
            for (i, (cell, w)) in cells.iter().zip(&widths).enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                // Right-align numeric-looking cells, left-align labels.
                if cell.parse::<f64>().is_ok() || cell.ends_with('%') {
                    line.push_str(&format!("{cell:>w$}"));
                } else {
                    line.push_str(&format!("{cell:<w$}"));
                }
            }
            line
        };
        out.push_str(&fmt_row(&self.columns));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        for note in &self.notes {
            out.push_str(&format!("note: {note}\n"));
        }
        out
    }
}

impl Table {
    /// Render as CSV (header row + data rows; RFC-4180 quoting).
    #[must_use]
    pub fn to_csv(&self) -> String {
        let quote = |cell: &str| -> String {
            if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_owned()
            }
        };
        let mut out = String::new();
        out.push_str(&self.columns.iter().map(|c| quote(c)).collect::<Vec<_>>().join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| quote(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }

    /// Write the table as `<dir>/<slug>.csv`, deriving the slug from the
    /// title. Returns the path written.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write_csv(&self, dir: &std::path::Path) -> std::io::Result<std::path::PathBuf> {
        let slug: String = self
            .title
            .chars()
            .take_while(|c| *c != ':')
            .map(|c| if c.is_alphanumeric() { c.to_ascii_lowercase() } else { '_' })
            .collect();
        let path = dir.join(format!("{slug}.csv"));
        std::fs::create_dir_all(dir)?;
        std::fs::write(&path, self.to_csv())?;
        Ok(path)
    }
}

impl std::fmt::Display for Table {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.render())
    }
}

// ---------------------------------------------------------------------------
// Structured (JSON) export.
// ---------------------------------------------------------------------------

/// Escape a string for inclusion in a JSON document.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Format an `f64` with a fixed six-decimal representation.
///
/// Fixed precision (rather than shortest-roundtrip) makes the byte
/// output a pure function of the value, which the sweep's determinism
/// test relies on; non-finite values become `null`.
fn json_f64(x: f64) -> String {
    if x.is_finite() {
        format!("{x:.6}")
    } else {
        "null".to_owned()
    }
}

fn json_hist(h: &dram_timing::stats::LatencyHist, scale_ns: f64, out: &mut String, indent: &str) {
    let q = |p: f64| json_f64(h.quantile(p) as f64 * scale_ns);
    out.push_str(&format!(
        "{{\n{indent}  \"count\": {},\n{indent}  \"mean_ns\": {},\n{indent}  \"p50_ns\": {},\n\
         {indent}  \"p95_ns\": {},\n{indent}  \"p99_ns\": {},\n{indent}  \"max_ns\": {}\n{indent}}}",
        h.count(),
        json_f64(h.mean() * scale_ns),
        q(0.50),
        q(0.95),
        q(0.99),
        json_f64(h.max() as f64 * scale_ns),
    ));
}

/// Serialize one run's metrics as a stable, hand-rolled JSON document
/// (schema `cwfmem.run.v1`; see DESIGN.md for the field reference).
///
/// No serde in this workspace — the build environment is offline — so
/// the writer is explicit. All floats use fixed six-decimal formatting,
/// making the output byte-identical for identical metrics regardless of
/// how the producing sweep was scheduled.
#[must_use]
pub fn to_json(m: &crate::metrics::RunMetrics) -> String {
    write_json(m, None, None, None)
}

/// [`to_json`] plus an additive `"kernel"` diagnostics object (kernel
/// name, memory-tick call count, skipped cycles, tick ratio). Everything
/// else — including the schema tag, which the addition does not break —
/// is byte-identical to [`to_json`] on the same metrics, keeping the two
/// kernels' metric documents directly diffable.
#[must_use]
pub fn to_json_diag(m: &crate::metrics::RunMetrics, k: &crate::system::KernelStats) -> String {
    write_json(m, Some(k), None, None)
}

/// [`to_json_diag`] plus an additive `"verify"` object summarising the
/// cross-layer oracle's findings (checked counts, violation total, first
/// few violations rendered as strings). Like the `"kernel"` object, the
/// addition leaves every other byte — including the schema tag — identical
/// to [`to_json`] on the same metrics.
#[must_use]
pub fn to_json_verified(
    m: &crate::metrics::RunMetrics,
    k: &crate::system::KernelStats,
    v: &cwf_verify::VerifyReport,
) -> String {
    write_json(m, Some(k), Some(v), None)
}

/// [`to_json_diag`] plus the additive `"trace"` object (event counts,
/// ring drops, and the latency-waterfall stage aggregates) and, when the
/// run was also verified, the `"verify"` object. As with every other
/// diagnostics object, the addition leaves all other bytes — including
/// the schema tag — identical to [`to_json`] on the same metrics.
#[must_use]
pub fn to_json_traced(
    m: &crate::metrics::RunMetrics,
    k: &crate::system::KernelStats,
    v: Option<&cwf_verify::VerifyReport>,
    t: &crate::trace::TraceReport,
) -> String {
    write_json(m, Some(k), v, Some(t))
}

fn write_json(
    m: &crate::metrics::RunMetrics,
    kernel: Option<&crate::system::KernelStats>,
    verify: Option<&cwf_verify::VerifyReport>,
    trace: Option<&crate::trace::TraceReport>,
) -> String {
    use crate::metrics::CPU_HZ;
    use dram_power::LpddrIo;

    let cpu_cycle_ns = 1e9 / CPU_HZ;
    let mut o = String::new();
    o.push_str("{\n");
    o.push_str("  \"schema\": \"cwfmem.run.v1\",\n");
    o.push_str(&format!("  \"bench\": \"{}\",\n", json_escape(&m.bench)));
    o.push_str(&format!("  \"mem\": \"{}\",\n", json_escape(&m.mem.label())));
    o.push_str(&format!("  \"cycles\": {},\n", m.cycles));
    o.push_str(&format!(
        "  \"insts_per_core\": [{}],\n",
        m.insts_per_core.iter().map(u64::to_string).collect::<Vec<_>>().join(", ")
    ));
    o.push_str(&format!("  \"ipc_total\": {},\n", json_f64(m.ipc_total())));
    o.push_str(&format!("  \"dram_reads\": {},\n", m.dram_reads));
    o.push_str(&format!("  \"dram_writes\": {},\n", m.dram_writes));
    o.push_str(&format!("  \"avg_cw_latency_ns\": {},\n", json_f64(m.avg_cw_latency_ns())));
    o.push_str("  \"cw_latency\": ");
    json_hist(&m.hier.cw_lat_hist, cpu_cycle_ns, &mut o, "  ");
    o.push_str(",\n");
    o.push_str(&format!("  \"avg_read_latency_ns\": {},\n", json_f64(m.avg_read_latency_ns())));
    o.push_str("  \"read_latency\": ");
    json_hist(&m.mem_stats.read_lat_hist(), 1.0, &mut o, "  ");
    o.push_str(",\n");
    o.push_str(&format!("  \"bus_utilization\": {},\n", json_f64(m.bus_utilization())));
    o.push_str(&format!("  \"row_hit_rate\": {},\n", json_f64(m.row_hit_rate())));
    o.push_str(&format!(
        "  \"dram_power_w\": {},\n",
        json_f64(m.dram_power_w(LpddrIo::ServerAdapted))
    ));
    o.push_str(&format!(
        "  \"critical_word_hist\": [{}],\n",
        m.hier.critical_word_hist.iter().map(u64::to_string).collect::<Vec<_>>().join(", ")
    ));
    match &m.cwf {
        Some(c) => o.push_str(&format!(
            "  \"cwf\": {{ \"served_fast_fraction\": {}, \"avg_head_start_cycles\": {}, \
             \"parity_errors\": {} }},\n",
            json_f64(c.served_fast_fraction()),
            json_f64(c.avg_head_start()),
            c.parity_errors
        )),
        None => o.push_str("  \"cwf\": null,\n"),
    }
    if let Some(k) = kernel {
        o.push_str(&format!(
            "  \"kernel\": {{ \"name\": \"{}\", \"mem_tick_calls\": {}, \
             \"cycles_skipped\": {}, \"tick_ratio\": {}, \"core_ticks\": {}, \
             \"core_stall_cycles\": {}, \"core_wait_cycles\": {}, \
             \"core_cruise_cycles\": {}, \"core_replay_cycles\": {}, \
             \"core_tick_ratio\": {} }},\n",
            k.kernel.name(),
            k.mem_tick_calls,
            k.cycles_skipped,
            json_f64(k.tick_ratio()),
            k.core_ticks,
            k.core_stall_cycles,
            k.core_wait_cycles,
            k.core_cruise_cycles,
            k.core_replay_cycles,
            json_f64(k.core_tick_ratio())
        ));
    }
    if let Some(v) = verify {
        o.push_str(&format!(
            "  \"verify\": {{\n    \"clean\": {},\n    \"commands_checked\": {},\n    \
             \"events_checked\": {},\n    \"fills_completed\": {},\n    \
             \"core_spans\": {},\n    \"core_span_cycles\": {},\n    \
             \"total_violations\": {},\n    \"violations\": [",
            v.is_clean(),
            v.commands_checked,
            v.events_checked,
            v.fills_completed,
            v.core_spans,
            v.core_span_cycles,
            v.total_violations,
        ));
        // A handful of rendered violations is enough to localise a bug;
        // the full list lives in the VerifyReport.
        for (i, viol) in v.violations.iter().take(16).enumerate() {
            if i > 0 {
                o.push(',');
            }
            o.push_str(&format!("\n      \"{}\"", json_escape(&viol.to_string())));
        }
        if !v.violations.is_empty() {
            o.push_str("\n    ");
        }
        o.push_str("]\n  },\n");
    }
    if let Some(t) = trace {
        o.push_str("  \"trace\": ");
        o.push_str(&t.to_json_object("  "));
        o.push_str(",\n");
    }
    o.push_str("  \"channels\": [");
    for (ci, c) in m.mem_stats.controllers.iter().enumerate() {
        if ci > 0 {
            o.push(',');
        }
        o.push_str("\n    {\n");
        o.push_str(&format!("      \"label\": \"{}\",\n", json_escape(&c.label)));
        o.push_str(&format!("      \"kind\": \"{}\",\n", format!("{:?}", c.kind).to_lowercase()));
        o.push_str(&format!("      \"mem_cycles\": {},\n", c.mem_cycles));
        o.push_str(&format!("      \"reads\": {},\n", c.channel.reads));
        o.push_str(&format!("      \"writes\": {},\n", c.channel.writes));
        o.push_str(&format!("      \"activates\": {},\n", c.channel.activates));
        o.push_str(&format!("      \"precharges\": {},\n", c.channel.precharges));
        o.push_str(&format!("      \"refreshes\": {},\n", c.channel.refreshes));
        o.push_str(&format!("      \"row_hits\": {},\n", c.channel.row_hits));
        o.push_str(&format!("      \"row_misses\": {},\n", c.channel.row_misses));
        o.push_str(&format!("      \"row_conflicts\": {},\n", c.channel.row_conflicts));
        o.push_str("      \"read_latency\": ");
        json_hist(&c.read_lat_hist, 1.0, &mut o, "      ");
        o.push_str(",\n");
        // Only banks that saw traffic: keeps RLDRAM3's 16-bank arrays
        // from padding every DDR3 document with zeros.
        o.push_str("      \"banks\": [");
        let mut first = true;
        for (bi, b) in c.channel.per_bank.iter().enumerate() {
            if b.activates == 0 && b.reads == 0 && b.writes == 0 {
                continue;
            }
            if !first {
                o.push(',');
            }
            first = false;
            o.push_str(&format!(
                "\n        {{ \"bank\": {bi}, \"activates\": {}, \"reads\": {}, \
                 \"writes\": {} }}",
                b.activates, b.reads, b.writes
            ));
        }
        if !first {
            o.push_str("\n      ");
        }
        o.push_str("]\n    }");
    }
    if !m.mem_stats.controllers.is_empty() {
        o.push_str("\n  ");
    }
    o.push_str("]\n}\n");
    o
}

/// Format a ratio as a signed percentage delta (e.g. `+12.9%`).
#[must_use]
pub fn pct_delta(ratio: f64) -> String {
    format!("{:+.1}%", (ratio - 1.0) * 100.0)
}

/// Format a fraction as a percentage (e.g. `67.2%`).
#[must_use]
pub fn pct(fraction: f64) -> String {
    format!("{:.1}%", fraction * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_and_includes_everything() {
        let mut t = Table::new("Demo", &["bench", "value"]);
        t.row(vec!["stream".into(), "1.31".into()]);
        t.row(vec!["mcf".into(), "0.99".into()]);
        t.note("numbers are ratios");
        let s = t.render();
        assert!(s.contains("== Demo =="));
        assert!(s.contains("stream"));
        assert!(s.contains("note: numbers are ratios"));
        // Aligned: both value cells end at the same column.
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn arity_is_checked() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(vec!["only one".into()]);
    }

    #[test]
    fn csv_rendering_quotes_and_escapes() {
        let mut t = Table::new("Figure 6: demo, with comma", &["bench", "x"]);
        t.row(vec!["a,b".into(), "1.5".into()]);
        t.row(vec!["plain".into(), "2".into()]);
        let csv = t.to_csv();
        assert_eq!(csv.lines().count(), 3);
        assert!(csv.contains("\"a,b\""));
        assert!(csv.starts_with("bench,x"));
    }

    #[test]
    fn csv_file_roundtrip() {
        let dir = std::env::temp_dir().join("cwfmem_csv_test");
        let mut t = Table::new("Figure 9: placement", &["a"]);
        t.row(vec!["1".into()]);
        let path = t.write_csv(&dir).expect("write");
        assert!(path.file_name().unwrap().to_str().unwrap().starts_with("figure_9"));
        let body = std::fs::read_to_string(path).expect("read");
        assert_eq!(body, "a\n1\n");
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn percentage_helpers() {
        assert_eq!(pct_delta(1.129), "+12.9%");
        assert_eq!(pct_delta(0.91), "-9.0%");
        assert_eq!(pct(0.672), "67.2%");
    }
}
