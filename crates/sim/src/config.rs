//! Run configurations: memory system kinds and simulation knobs.

use cwf_core::{
    CwfConfig, CwfStats, DramCacheConfig, DramCacheMemory, DramCacheStats, HeteroCwfMemory,
    PagePlacedMemory, PlacementPolicy, ProfilingMemory,
};
use dram_timing::DeviceKind;
use mem_ctrl::{
    HomogeneousMemory, LineRequest, MainMemory, MemBusy, MemEvent, MemSystemStats, Token,
};

/// A concrete memory backend (static dispatch over the paper's designs).
///
/// One value exists per `System`, so the size spread between variants
/// (the page-placement comparator carries per-page heat tables) is not
/// worth a heap indirection on every memory call.
#[allow(clippy::large_enum_variant)]
#[derive(Debug)]
pub enum MemBackend {
    /// N identical channels of one device type.
    Homogeneous(HomogeneousMemory),
    /// The split-line CWF heterogeneous design.
    Cwf(HeteroCwfMemory),
    /// The §7.1 page-placement comparator.
    PagePlaced(PagePlacedMemory),
    /// A profiling pass over the baseline (collects page heat).
    Profiling(ProfilingMemory<HomogeneousMemory>),
    /// The DRAM-cache hybrid: fast channels as a tags-in-DRAM line cache
    /// in front of a slow NVM-like store (DESIGN.md §17).
    DramCache(DramCacheMemory),
}

impl MemBackend {
    /// CWF statistics if this backend is a CWF organization.
    #[must_use]
    pub fn cwf_stats(&self) -> Option<CwfStats> {
        match self {
            MemBackend::Cwf(m) => Some(*m.cwf_stats()),
            _ => None,
        }
    }

    /// Reads served by the fast channel for page-placed memory.
    #[must_use]
    pub fn page_placed(&self) -> Option<&PagePlacedMemory> {
        match self {
            MemBackend::PagePlaced(m) => Some(m),
            _ => None,
        }
    }

    /// The profiler, if this is a profiling pass.
    #[must_use]
    pub fn profiling(&self) -> Option<&ProfilingMemory<HomogeneousMemory>> {
        match self {
            MemBackend::Profiling(m) => Some(m),
            _ => None,
        }
    }

    /// DRAM-cache statistics if this backend is a DRAM-cache hybrid.
    #[must_use]
    pub fn dramcache_stats(&self) -> Option<DramCacheStats> {
        match self {
            MemBackend::DramCache(m) => Some(*m.dramcache_stats()),
            _ => None,
        }
    }

    /// The DRAM-cache backend, if that is what this is (seeded-fault
    /// tests reach through this to the injection hooks).
    pub fn dramcache_mut(&mut self) -> Option<&mut DramCacheMemory> {
        match self {
            MemBackend::DramCache(m) => Some(m),
            _ => None,
        }
    }

    /// Serialize the backend's mutable state (checkpointing). A one-byte
    /// variant tag guards against resuming into a different organization;
    /// the variant itself is rebuilt from the run config, never decoded.
    ///
    /// # Errors
    ///
    /// Fails when the concrete backend cannot be checkpointed (e.g. a
    /// controller trace sink is attached).
    pub fn save_state(&self, w: &mut cwf_ckpt::Writer) -> cwf_ckpt::Result<()> {
        match self {
            MemBackend::Homogeneous(m) => {
                w.put_u8(0);
                m.save_state(w)
            }
            MemBackend::Cwf(m) => {
                w.put_u8(1);
                m.save_state(w)
            }
            MemBackend::PagePlaced(m) => {
                w.put_u8(2);
                m.save_state(w)
            }
            MemBackend::Profiling(m) => {
                w.put_u8(3);
                m.save_state(w, |inner, w| inner.save_state(w))
            }
            MemBackend::DramCache(m) => {
                w.put_u8(4);
                m.save_state(w)
            }
        }
    }

    /// Restore state saved by [`MemBackend::save_state`] into a backend
    /// freshly built from the same run config.
    ///
    /// # Errors
    ///
    /// Fails on malformed input or when the checkpoint was taken on a
    /// different backend variant.
    pub fn load_state(&mut self, r: &mut cwf_ckpt::Reader<'_>) -> cwf_ckpt::Result<()> {
        let tag = r.get_u8()?;
        match (tag, self) {
            (0, MemBackend::Homogeneous(m)) => m.load_state(r),
            (1, MemBackend::Cwf(m)) => m.load_state(r),
            (2, MemBackend::PagePlaced(m)) => m.load_state(r),
            (3, MemBackend::Profiling(m)) => m.load_state(r, |inner, r| inner.load_state(r)),
            (4, MemBackend::DramCache(m)) => m.load_state(r),
            (tag, _) => Err(cwf_ckpt::CkptError::new(format!(
                "backend variant mismatch: checkpoint has tag {tag}"
            ))),
        }
    }

    /// Replay a warmed dirty eviction into the adaptive placement state
    /// (no-op for backends without one).
    pub fn seed_adaptive_tag(&mut self, line: u64, predicted_critical: u8) {
        if let MemBackend::Cwf(m) = self {
            m.seed_adaptive_tag(line, predicted_critical);
        }
    }

    /// Install the adaptive placement's steady-state layout function.
    pub fn set_steady_state_placement(&mut self, f: Box<dyn Fn(u64) -> Option<u8> + Send>) {
        if let MemBackend::Cwf(m) = self {
            m.set_steady_state_placement(f);
        }
    }
}

impl MainMemory for MemBackend {
    fn try_submit(&mut self, req: &LineRequest, now: u64) -> Result<Option<Token>, MemBusy> {
        match self {
            MemBackend::Homogeneous(m) => m.try_submit(req, now),
            MemBackend::Cwf(m) => m.try_submit(req, now),
            MemBackend::PagePlaced(m) => m.try_submit(req, now),
            MemBackend::Profiling(m) => m.try_submit(req, now),
            MemBackend::DramCache(m) => m.try_submit(req, now),
        }
    }

    fn tick(&mut self, now: u64) {
        match self {
            MemBackend::Homogeneous(m) => m.tick(now),
            MemBackend::Cwf(m) => m.tick(now),
            MemBackend::PagePlaced(m) => m.tick(now),
            MemBackend::Profiling(m) => m.tick(now),
            MemBackend::DramCache(m) => m.tick(now),
        }
    }

    fn drain_events(&mut self, now: u64, out: &mut Vec<MemEvent>) {
        match self {
            MemBackend::Homogeneous(m) => m.drain_events(now, out),
            MemBackend::Cwf(m) => m.drain_events(now, out),
            MemBackend::PagePlaced(m) => m.drain_events(now, out),
            MemBackend::Profiling(m) => m.drain_events(now, out),
            MemBackend::DramCache(m) => m.drain_events(now, out),
        }
    }

    fn stats(&mut self, now: u64) -> MemSystemStats {
        match self {
            MemBackend::Homogeneous(m) => m.stats(now),
            MemBackend::Cwf(m) => m.stats(now),
            MemBackend::PagePlaced(m) => m.stats(now),
            MemBackend::Profiling(m) => m.stats(now),
            MemBackend::DramCache(m) => m.stats(now),
        }
    }

    fn next_activity(&self, now: u64) -> Option<u64> {
        match self {
            MemBackend::Homogeneous(m) => m.next_activity(now),
            MemBackend::Cwf(m) => m.next_activity(now),
            MemBackend::PagePlaced(m) => m.next_activity(now),
            MemBackend::Profiling(m) => m.next_activity(now),
            MemBackend::DramCache(m) => m.next_activity(now),
        }
    }

    // Audit hooks for the verify oracle. The page-placed and profiling
    // comparators fall back to the trait's no-op defaults: their channels
    // are the same audited controller types, but they are diagnostic
    // backends outside the oracle's clean-run matrix.
    fn enable_audit(&mut self) {
        match self {
            MemBackend::Homogeneous(m) => m.enable_audit(),
            MemBackend::Cwf(m) => m.enable_audit(),
            MemBackend::DramCache(m) => m.enable_audit(),
            MemBackend::PagePlaced(_) | MemBackend::Profiling(_) => {}
        }
    }

    fn audit_channels(&self) -> Vec<mem_ctrl::ChannelDesc> {
        match self {
            MemBackend::Homogeneous(m) => m.audit_channels(),
            MemBackend::Cwf(m) => m.audit_channels(),
            MemBackend::DramCache(m) => m.audit_channels(),
            MemBackend::PagePlaced(_) | MemBackend::Profiling(_) => Vec::new(),
        }
    }

    fn drain_audit(&mut self, out: &mut Vec<mem_ctrl::AuditRecord>) {
        match self {
            MemBackend::Homogeneous(m) => m.drain_audit(out),
            MemBackend::Cwf(m) => m.drain_audit(out),
            MemBackend::DramCache(m) => m.drain_audit(out),
            MemBackend::PagePlaced(_) | MemBackend::Profiling(_) => {}
        }
    }

    fn enable_trace(&mut self) {
        match self {
            MemBackend::Homogeneous(m) => m.enable_trace(),
            MemBackend::Cwf(m) => m.enable_trace(),
            MemBackend::PagePlaced(m) => m.enable_trace(),
            MemBackend::Profiling(m) => m.enable_trace(),
            MemBackend::DramCache(m) => m.enable_trace(),
        }
    }

    fn drain_trace(&mut self, out: &mut Vec<cwf_tracelog::TraceEvent>) {
        match self {
            MemBackend::Homogeneous(m) => m.drain_trace(out),
            MemBackend::Cwf(m) => m.drain_trace(out),
            MemBackend::PagePlaced(m) => m.drain_trace(out),
            MemBackend::Profiling(m) => m.drain_trace(out),
            MemBackend::DramCache(m) => m.drain_trace(out),
        }
    }
}

/// Every memory organization evaluated in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum MemKind {
    /// Baseline: 4 × 72-bit DDR3-1600 channels (Table 1).
    Ddr3,
    /// Homogeneous LPDDR2 (Figure 1).
    Lpddr2,
    /// Homogeneous RLDRAM3 (Figure 1).
    Rldram3,
    /// CWF: RLDRAM3 critical store + DDR3 bulk (Figure 6, "RD").
    Rd,
    /// CWF: RLDRAM3 critical store + LPDDR2 bulk — the flagship ("RL").
    Rl,
    /// CWF: DDR3 critical store + LPDDR2 bulk ("DL").
    Dl,
    /// RL with adaptive per-line placement (Figure 9, "RL AD").
    RlAdaptive,
    /// RL with oracular placement (Figure 9, "RL OR").
    RlOracle,
    /// RL with random word placement (§6.1.1 control).
    RlRandom,
    /// A homogeneous memory of any spec-layer standard (baseline
    /// topology); e.g. `Spec(DeviceKind::Ddr5)` is 4 × DDR5-4800 channels.
    Spec(DeviceKind),
    /// A CWF pairing of two spec-layer standards: fast critical store +
    /// slow bulk, on the flagship topology (`--mem rldram3+ddr5_4800`).
    SpecCwf(DeviceKind, DeviceKind),
    /// The DRAM-cache hybrid: the fast device as a tags-in-DRAM line
    /// cache in front of the slow store (`--mem dramcache:rldram3+nvm_slow`).
    DramCache(DeviceKind, DeviceKind),
}

impl MemKind {
    /// Display label matching the paper's figures; spec-layer kinds use
    /// the standard's display name (`DDR5`, `RLDRAM3+DDR5`).
    #[must_use]
    pub fn label(self) -> String {
        match self {
            MemKind::Ddr3 => "DDR3".to_owned(),
            MemKind::Lpddr2 => "LPDDR2".to_owned(),
            MemKind::Rldram3 => "RLDRAM3".to_owned(),
            MemKind::Rd => "RD".to_owned(),
            MemKind::Rl => "RL".to_owned(),
            MemKind::Dl => "DL".to_owned(),
            MemKind::RlAdaptive => "RL AD".to_owned(),
            MemKind::RlOracle => "RL OR".to_owned(),
            MemKind::RlRandom => "RL RAND".to_owned(),
            MemKind::Spec(k) => k.to_string(),
            MemKind::SpecCwf(fast, slow) => format!("{fast}+{slow}"),
            MemKind::DramCache(fast, slow) => format!("DC {fast}+{slow}"),
        }
    }

    /// Filesystem- and CLI-safe short name (`rl-ad` for "RL AD"); also
    /// the spelling `cwfmem` accepts for `--mem`/`--kinds`. Spec-layer
    /// kinds use the spec id (`ddr5_4800`, `rldram3+ddr5_4800`).
    #[must_use]
    pub fn slug(self) -> String {
        match self {
            MemKind::Ddr3 => "ddr3".to_owned(),
            MemKind::Lpddr2 => "lpddr2".to_owned(),
            MemKind::Rldram3 => "rldram3".to_owned(),
            MemKind::Rd => "rd".to_owned(),
            MemKind::Rl => "rl".to_owned(),
            MemKind::Dl => "dl".to_owned(),
            MemKind::RlAdaptive => "rl-ad".to_owned(),
            MemKind::RlOracle => "rl-or".to_owned(),
            MemKind::RlRandom => "rl-rand".to_owned(),
            MemKind::Spec(k) => k.spec_id().to_owned(),
            MemKind::SpecCwf(fast, slow) => format!("{}+{}", fast.spec_id(), slow.spec_id()),
            MemKind::DramCache(fast, slow) => {
                format!("dramcache:{}+{}", fast.spec_id(), slow.spec_id())
            }
        }
    }

    /// Parse a `--mem`/`--kinds` token: a legacy slug (`ddr3`, `rl-ad`,
    /// ...), a spec id (`ddr5_4800`), or a `fast+slow` CWF pairing of two
    /// spec tokens (`rldram3+ddr5_4800`). Pairings that name a paper
    /// design point (and plain `ddr3`/`lpddr2`/`rldram3`) normalize to the
    /// legacy kind so reports and seeds stay byte-identical.
    #[must_use]
    pub fn parse(token: &str) -> Option<MemKind> {
        const LEGACY: [(&str, MemKind); 9] = [
            ("ddr3", MemKind::Ddr3),
            ("lpddr2", MemKind::Lpddr2),
            ("rldram3", MemKind::Rldram3),
            ("rd", MemKind::Rd),
            ("rl", MemKind::Rl),
            ("dl", MemKind::Dl),
            ("rl-ad", MemKind::RlAdaptive),
            ("rl-or", MemKind::RlOracle),
            ("rl-rand", MemKind::RlRandom),
        ];
        if let Some((_, k)) = LEGACY.iter().find(|(n, _)| *n == token) {
            return Some(*k);
        }
        if let Some(pair) = token.strip_prefix("dramcache:") {
            let (fast_tok, slow_tok) = pair.split_once('+')?;
            let fast = DeviceKind::parse_token(fast_tok)?;
            let slow = DeviceKind::parse_token(slow_tok)?;
            return Some(MemKind::DramCache(fast, slow));
        }
        if let Some((fast_tok, slow_tok)) = token.split_once('+') {
            let fast = DeviceKind::parse_token(fast_tok)?;
            let slow = DeviceKind::parse_token(slow_tok)?;
            return Some(match (fast, slow) {
                (DeviceKind::Rldram3, DeviceKind::Lpddr2) => MemKind::Rl,
                (DeviceKind::Rldram3, DeviceKind::Ddr3) => MemKind::Rd,
                (DeviceKind::Ddr3, DeviceKind::Lpddr2) => MemKind::Dl,
                _ => MemKind::SpecCwf(fast, slow),
            });
        }
        let k = DeviceKind::parse_token(token)?;
        Some(match k {
            DeviceKind::Ddr3 => MemKind::Ddr3,
            DeviceKind::Lpddr2 => MemKind::Lpddr2,
            DeviceKind::Rldram3 => MemKind::Rldram3,
            _ => MemKind::Spec(k),
        })
    }

    /// Construct the memory backend for this kind.
    #[must_use]
    pub fn build(self, parity_error_rate: f64, seed: u64) -> MemBackend {
        let cwf = |cfg: CwfConfig| -> MemBackend {
            MemBackend::Cwf(HeteroCwfMemory::new(
                cfg.with_parity_errors(parity_error_rate, seed ^ 0xC0FF_EE00),
            ))
        };
        match self {
            MemKind::Ddr3 => MemBackend::Homogeneous(HomogeneousMemory::baseline_ddr3()),
            MemKind::Lpddr2 => MemBackend::Homogeneous(HomogeneousMemory::all_lpddr2()),
            MemKind::Rldram3 => MemBackend::Homogeneous(HomogeneousMemory::all_rldram3()),
            MemKind::Rd => cwf(CwfConfig::rd()),
            MemKind::Rl => cwf(CwfConfig::rl()),
            MemKind::Dl => cwf(CwfConfig::dl()),
            MemKind::RlAdaptive => cwf(CwfConfig::rl().with_policy(PlacementPolicy::Adaptive)),
            MemKind::RlOracle => cwf(CwfConfig::rl().with_policy(PlacementPolicy::Oracle)),
            MemKind::RlRandom => cwf(CwfConfig::rl().with_policy(PlacementPolicy::Random)),
            MemKind::Spec(k) => MemBackend::Homogeneous(HomogeneousMemory::preset(k)),
            MemKind::SpecCwf(fast, slow) => cwf(CwfConfig::pair(fast, slow)),
            MemKind::DramCache(fast, slow) => {
                MemBackend::DramCache(DramCacheMemory::new(DramCacheConfig::pair(fast, slow)))
            }
        }
    }

    /// True for the split-line CWF organizations.
    #[must_use]
    pub fn is_cwf(self) -> bool {
        matches!(
            self,
            MemKind::Rd
                | MemKind::Rl
                | MemKind::Dl
                | MemKind::RlAdaptive
                | MemKind::RlOracle
                | MemKind::RlRandom
                | MemKind::SpecCwf(..)
        )
    }
}

impl cwf_ckpt::Ckpt for MemKind {
    // Encoded as the CLI slug: it is the one spelling guaranteed to
    // round-trip through `parse` for every kind (tested below), and it
    // keeps the checkpoint readable in a hex dump.
    fn save(&self, w: &mut cwf_ckpt::Writer) {
        cwf_ckpt::Ckpt::save(&self.slug(), w);
    }
    fn load(r: &mut cwf_ckpt::Reader<'_>) -> cwf_ckpt::Result<Self> {
        let slug: String = cwf_ckpt::Ckpt::load(r)?;
        MemKind::parse(&slug)
            .ok_or_else(|| cwf_ckpt::CkptError::new(format!("unknown memory kind '{slug}'")))
    }
}

/// Which simulation kernel drives the clock.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Kernel {
    /// Tick every layer once per CPU cycle (the reference loop).
    Cycle,
    /// Skip provably no-op cycles by jumping to the machine's minimum
    /// `next_activity` bound. Bit-identical metrics, ≥3× fewer memory
    /// tick calls on memory-intensive profiles.
    Event,
}

impl Kernel {
    /// Parse a `CWF_KERNEL` value (`"cycle"` or `"event"`, case-insensitive).
    #[must_use]
    pub fn from_env_str(s: &str) -> Option<Kernel> {
        match s.to_ascii_lowercase().as_str() {
            "cycle" => Some(Kernel::Cycle),
            "event" => Some(Kernel::Event),
            _ => None,
        }
    }

    /// Reporting name (`"cycle"` / `"event"`).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Kernel::Cycle => "cycle",
            Kernel::Event => "event",
        }
    }

    /// The kernel selected by the `CWF_KERNEL` environment variable
    /// (default: [`Kernel::Event`]).
    #[must_use]
    pub fn from_env() -> Kernel {
        std::env::var("CWF_KERNEL")
            .ok()
            .and_then(|s| Self::from_env_str(&s))
            .unwrap_or(Kernel::Event)
    }
}

impl cwf_ckpt::Ckpt for Kernel {
    fn save(&self, w: &mut cwf_ckpt::Writer) {
        w.put_u8(match self {
            Kernel::Cycle => 0,
            Kernel::Event => 1,
        });
    }
    fn load(r: &mut cwf_ckpt::Reader<'_>) -> cwf_ckpt::Result<Self> {
        match r.get_u8()? {
            0 => Ok(Kernel::Cycle),
            1 => Ok(Kernel::Event),
            v => Err(cwf_ckpt::CkptError::new(format!("invalid Kernel tag {v}"))),
        }
    }
}

/// Knobs of one simulation run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunConfig {
    /// Memory organization.
    pub mem: MemKind,
    /// Cores (the paper uses 8; `IPC_alone` runs use 1).
    pub cores: u8,
    /// Measure until this many demand DRAM reads (after warm-up).
    pub target_dram_reads: u64,
    /// Demand DRAM reads of warm-up before measurement starts.
    pub warmup_dram_reads: u64,
    /// Hard cycle cap (safety net).
    pub max_cycles: u64,
    /// Stride prefetcher on/off (§6.1.1 ablation).
    pub prefetch: bool,
    /// Workload/backend seed.
    pub seed: u64,
    /// Critical-word parity error injection rate (§4.2.3).
    pub parity_error_rate: f64,
    /// Functional (timing-free) cache-warming memory operations per core
    /// before the timed windows — the analogue of the paper's 2 B-
    /// instruction fast-forward. Fills the 4 MB L2 so that eviction,
    /// writeback and adaptive-placement behaviour is in steady state.
    pub functional_warm_ops: u64,
    /// Simulation kernel (`CWF_KERNEL` env: `cycle`/`event`; default event).
    pub kernel: Kernel,
    /// Run the cross-layer verify oracle alongside the simulation
    /// ([`cwf_verify`]). Observation only — metrics are bit-identical
    /// either way; the cost is bookkeeping time and memory. Defaults to on
    /// in debug builds and off in release sweeps; `CWF_VERIFY=1`/`0`
    /// overrides, and the CLI's `--verify`/`--no-verify` override both.
    pub verify: bool,
    /// Collect cross-layer trace events ([`cwf_tracelog`]) into the
    /// system's ring buffer. Observation only — metrics are bit-identical
    /// either way. Defaults to off; `CWF_TRACE=1` enables it, and the
    /// CLI's `--trace`/`--no-trace` override both.
    pub trace: bool,
}

cwf_ckpt::ckpt_struct!(RunConfig {
    mem,
    cores,
    target_dram_reads,
    warmup_dram_reads,
    max_cycles,
    prefetch,
    seed,
    parity_error_rate,
    functional_warm_ops,
    kernel,
    verify,
    trace,
});

/// The default verify-oracle setting: `CWF_VERIFY` (`1`/`true`/`on` or
/// `0`/`false`/`off`) when set, else on for debug builds, off for release.
#[must_use]
pub fn verify_default() -> bool {
    match std::env::var("CWF_VERIFY") {
        Ok(v) => matches!(v.to_ascii_lowercase().as_str(), "1" | "true" | "on" | "yes"),
        Err(_) => cfg!(debug_assertions),
    }
}

/// The default tracing setting: `CWF_TRACE` (`1`/`true`/`on`/`yes` to
/// enable) when set, else off.
#[must_use]
pub fn trace_default() -> bool {
    match std::env::var("CWF_TRACE") {
        Ok(v) => matches!(v.to_ascii_lowercase().as_str(), "1" | "true" | "on" | "yes"),
        Err(_) => false,
    }
}

impl RunConfig {
    /// The paper's methodology scaled by `reads` (it uses 2 M DRAM reads;
    /// our default harness uses `CWF_READS`, see the bench crate).
    #[must_use]
    pub fn paper(mem: MemKind, reads: u64) -> Self {
        RunConfig {
            mem,
            cores: 8,
            target_dram_reads: reads,
            warmup_dram_reads: (reads / 5).min(10_000),
            max_cycles: 4_000 * reads.max(1_000),
            prefetch: true,
            seed: 0xD2A4_0001,
            parity_error_rate: 0.0,
            functional_warm_ops: 40_000,
            kernel: Kernel::from_env(),
            verify: verify_default(),
            trace: trace_default(),
        }
    }

    /// A small, fast configuration for tests and doc examples.
    #[must_use]
    pub fn quick(mem: MemKind, reads: u64) -> Self {
        RunConfig {
            cores: 2,
            warmup_dram_reads: 0,
            functional_warm_ops: 4_000,
            ..Self::paper(mem, reads)
        }
    }

    /// Same run with a different core count.
    #[must_use]
    pub fn with_cores(mut self, cores: u8) -> Self {
        self.cores = cores;
        self
    }

    /// Same run with the prefetcher disabled.
    #[must_use]
    pub fn without_prefetch(mut self) -> Self {
        self.prefetch = false;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_kind_builds() {
        for kind in [
            MemKind::Ddr3,
            MemKind::Lpddr2,
            MemKind::Rldram3,
            MemKind::Rd,
            MemKind::Rl,
            MemKind::Dl,
            MemKind::RlAdaptive,
            MemKind::RlOracle,
            MemKind::RlRandom,
            MemKind::Spec(DeviceKind::Ddr4),
            MemKind::Spec(DeviceKind::Ddr5),
            MemKind::Spec(DeviceKind::Lpddr4),
            MemKind::SpecCwf(DeviceKind::Rldram3, DeviceKind::Ddr5),
            MemKind::DramCache(DeviceKind::Rldram3, DeviceKind::NvmSlow),
        ] {
            let mut mem = kind.build(0.0, 1);
            mem.tick(0);
            assert!(!kind.label().is_empty());
        }
    }

    #[test]
    fn cwf_classification() {
        assert!(MemKind::Rl.is_cwf());
        assert!(!MemKind::Ddr3.is_cwf());
        assert!(!MemKind::Rldram3.is_cwf());
        assert!(MemKind::SpecCwf(DeviceKind::Rldram3, DeviceKind::Ddr5).is_cwf());
        assert!(!MemKind::Spec(DeviceKind::Ddr5).is_cwf());
    }

    #[test]
    fn parse_covers_legacy_spec_and_pairs() {
        // Legacy slugs keep their legacy kinds (byte-identical reports).
        assert_eq!(MemKind::parse("ddr3"), Some(MemKind::Ddr3));
        assert_eq!(MemKind::parse("rl-ad"), Some(MemKind::RlAdaptive));
        // Spec ids and display names resolve through the spec layer.
        assert_eq!(MemKind::parse("ddr5_4800"), Some(MemKind::Spec(DeviceKind::Ddr5)));
        assert_eq!(MemKind::parse("ddr5"), Some(MemKind::Spec(DeviceKind::Ddr5)));
        assert_eq!(MemKind::parse("ddr3_1600"), Some(MemKind::Ddr3));
        // Pairings normalize to paper design points where one exists.
        assert_eq!(MemKind::parse("rldram3+lpddr2"), Some(MemKind::Rl));
        assert_eq!(MemKind::parse("rldram3+ddr3"), Some(MemKind::Rd));
        assert_eq!(MemKind::parse("ddr3+lpddr2"), Some(MemKind::Dl));
        assert_eq!(
            MemKind::parse("rldram3+ddr5_4800"),
            Some(MemKind::SpecCwf(DeviceKind::Rldram3, DeviceKind::Ddr5))
        );
        assert_eq!(MemKind::parse("sdram"), None);
        assert_eq!(MemKind::parse("rldram3+sdram"), None);
        // The DRAM-cache hybrid takes an explicit prefix.
        assert_eq!(
            MemKind::parse("dramcache:rldram3+nvm_slow"),
            Some(MemKind::DramCache(DeviceKind::Rldram3, DeviceKind::NvmSlow))
        );
        assert_eq!(MemKind::parse("dramcache:rldram3"), None);
        assert_eq!(MemKind::parse("dramcache:rldram3+sdram"), None);
        // Bare nvm_slow is a homogeneous spec point like any other.
        assert_eq!(MemKind::parse("nvm_slow"), Some(MemKind::Spec(DeviceKind::NvmSlow)));
    }

    #[test]
    fn spec_slugs_round_trip_through_parse() {
        for k in [
            MemKind::Spec(DeviceKind::Ddr4),
            MemKind::Spec(DeviceKind::Ddr5),
            MemKind::Spec(DeviceKind::Lpddr4),
            MemKind::SpecCwf(DeviceKind::Rldram3, DeviceKind::Ddr5),
            MemKind::DramCache(DeviceKind::Rldram3, DeviceKind::NvmSlow),
            MemKind::Ddr3,
            MemKind::Rl,
        ] {
            assert_eq!(MemKind::parse(&k.slug()), Some(k), "slug {}", k.slug());
        }
    }

    #[test]
    fn run_config_ckpt_round_trips() {
        use cwf_ckpt::Ckpt;
        let mut odd = RunConfig::paper(MemKind::RlAdaptive, 1_000);
        odd.parity_error_rate = 1e-3;
        odd.kernel = Kernel::Cycle;
        for cfg in [
            RunConfig::paper(MemKind::Rl, 1_000),
            RunConfig::quick(MemKind::SpecCwf(DeviceKind::Rldram3, DeviceKind::Ddr5), 10),
            odd,
        ] {
            let mut w = cwf_ckpt::Writer::new();
            cfg.save(&mut w);
            let bytes = w.into_vec();
            let mut r = cwf_ckpt::Reader::new(&bytes);
            let back = RunConfig::load(&mut r).expect("decode");
            r.finish().expect("no trailing bytes");
            assert!(back == cfg);
        }
    }

    #[test]
    fn paper_config_defaults() {
        let c = RunConfig::paper(MemKind::Rl, 100_000);
        assert_eq!(c.cores, 8);
        assert!(c.warmup_dram_reads > 0);
        assert!(c.prefetch);
    }
}
