//! Parallel, deterministic experiment sweeps.
//!
//! A sweep is a grid of independent simulation *cells* — one `(workload,
//! [`RunConfig`])` pair each — executed across a pool of worker threads.
//! Three properties define the harness (DESIGN.md has the full
//! contract):
//!
//! * **Determinism.** Every cell's seed is a pure function of the base
//!   seed and the cell's identity ([`cell_seed`]), fixed *before* any
//!   thread runs, and each cell simulates in complete isolation. The
//!   result vector is therefore bit-identical for any worker count —
//!   `CWF_JOBS=1` and `CWF_JOBS=16` produce the same bytes.
//! * **Panic isolation.** A cell that panics becomes
//!   [`CellResult::Failed`] carrying the panic message; the other cells
//!   and the sweep itself keep running.
//! * **Ordered aggregation.** Results come back in input order
//!   regardless of which worker finished first.
//!
//! The worker count comes from the `CWF_JOBS` environment variable
//! (default: all available cores); [`run_cells_with`] takes it
//! explicitly for tests that must not race on process-global state.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use crate::config::{MemKind, RunConfig};
use crate::metrics::RunMetrics;
use crate::runner::run_benchmark_diag;
use crate::system::KernelStats;

/// One unit of sweep work: a benchmark under a configuration.
#[derive(Debug, Clone)]
pub struct Cell {
    /// Benchmark name (must resolve via `workloads::by_name`: the 27
    /// suite programs or the `dcsweep`/`dcthrash`/`dcresident` stressors).
    pub bench: String,
    /// Full run configuration, including the per-cell seed.
    pub cfg: RunConfig,
}

/// Outcome of one cell.
///
/// `Done` dwarfs `Failed` because metrics embed latency histograms, but a
/// sweep holds one result per cell — boxing would only complicate every
/// consumer.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone)]
pub enum CellResult {
    /// The cell ran to completion: its metrics plus the kernel's
    /// execution counters (diagnostics; not part of the metrics schema).
    Done(RunMetrics, KernelStats),
    /// The cell panicked; the sweep continued without it.
    Failed {
        /// Benchmark of the failed cell.
        bench: String,
        /// Memory organization of the failed cell.
        mem: MemKind,
        /// Panic payload rendered as text.
        error: String,
    },
}

impl CellResult {
    /// The metrics, if the cell completed.
    #[must_use]
    pub fn metrics(&self) -> Option<&RunMetrics> {
        match self {
            CellResult::Done(m, _) => Some(m),
            CellResult::Failed { .. } => None,
        }
    }

    /// The kernel diagnostics, if the cell completed.
    #[must_use]
    pub fn kernel_stats(&self) -> Option<&KernelStats> {
        match self {
            CellResult::Done(_, k) => Some(k),
            CellResult::Failed { .. } => None,
        }
    }

    /// True if the cell panicked.
    #[must_use]
    pub fn is_failed(&self) -> bool {
        matches!(self, CellResult::Failed { .. })
    }
}

/// Worker-thread count: `CWF_JOBS` if set and positive, otherwise the
/// machine's available parallelism.
#[must_use]
pub fn jobs() -> usize {
    std::env::var("CWF_JOBS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(4, std::num::NonZero::get))
}

/// Deterministic per-cell seed: an FNV-1a/SplitMix64 mix of the base
/// seed with the cell's identity.
///
/// Decorrelates the random streams of different cells (same-seed cells
/// would replay identical address noise) while staying a pure function
/// of the inputs, so the sweep's determinism contract holds under any
/// scheduling.
#[must_use]
pub fn cell_seed(base: u64, bench: &str, mem: MemKind) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64 ^ base;
    for b in bench.bytes().chain(mem.slug().bytes()) {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    // SplitMix64 finalizer: spreads the FNV bits over the whole word.
    h = (h ^ (h >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    h = (h ^ (h >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    h ^ (h >> 31)
}

/// Build the (benchmark × kind) grid of cells under the paper's
/// methodology, each with its own [`cell_seed`]-derived seed.
#[must_use]
pub fn grid(benches: &[&str], kinds: &[MemKind], reads: u64) -> Vec<Cell> {
    let base = RunConfig::paper(MemKind::Ddr3, reads).seed;
    benches
        .iter()
        .flat_map(|b| {
            kinds.iter().map(move |&k| {
                let mut cfg = RunConfig::paper(k, reads);
                cfg.seed = cell_seed(base, b, k);
                Cell { bench: (*b).to_owned(), cfg }
            })
        })
        .collect()
}

/// Run every cell across [`jobs`] worker threads; results in input order.
#[must_use]
pub fn run_cells(cells: &[Cell]) -> Vec<CellResult> {
    run_cells_with(cells, jobs())
}

/// Run every cell across exactly `workers` threads; results in input
/// order. The worker count affects wall-clock time only, never the
/// results (see the module docs).
#[must_use]
pub fn run_cells_with(cells: &[Cell], workers: usize) -> Vec<CellResult> {
    let n = cells.len();
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<CellResult>>> = (0..n).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers.clamp(1, n.max(1)) {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let cell = &cells[i];
                // AssertUnwindSafe: the closure only touches the cell
                // (read-only) and its own fresh System; a panic cannot
                // leave shared state half-mutated.
                let res = match catch_unwind(AssertUnwindSafe(|| {
                    run_benchmark_diag(&cell.cfg, &cell.bench)
                })) {
                    Ok((m, k)) => CellResult::Done(m, k),
                    Err(payload) => CellResult::Failed {
                        bench: cell.bench.clone(),
                        mem: cell.cfg.mem,
                        // `&*payload`, not `&payload`: the Box itself is
                        // `Any` and would shadow the payload.
                        error: panic_text(&*payload),
                    },
                };
                *slots[i].lock().expect("result slot poisoned") = Some(res);
            });
        }
    });
    slots
        .into_iter()
        .map(|s| s.into_inner().expect("result slot poisoned").expect("every slot filled"))
        .collect()
}

/// Render a panic payload (`&str` or `String` in practice) as text.
fn panic_text(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_covers_the_cross_product() {
        let cells = grid(&["mcf", "stream"], &[MemKind::Ddr3, MemKind::Rl], 100);
        assert_eq!(cells.len(), 4);
        assert_eq!(cells[0].bench, "mcf");
        assert_eq!(cells[0].cfg.mem, MemKind::Ddr3);
        assert_eq!(cells[3].bench, "stream");
        assert_eq!(cells[3].cfg.mem, MemKind::Rl);
    }

    #[test]
    fn cell_seeds_are_stable_and_distinct() {
        let a = cell_seed(1, "mcf", MemKind::Rl);
        assert_eq!(a, cell_seed(1, "mcf", MemKind::Rl));
        assert_ne!(a, cell_seed(1, "mcf", MemKind::Ddr3));
        assert_ne!(a, cell_seed(1, "stream", MemKind::Rl));
        assert_ne!(a, cell_seed(2, "mcf", MemKind::Rl));
    }

    #[test]
    fn results_come_back_in_input_order() {
        let cells = grid(&["stream", "mcf"], &[MemKind::Ddr3], 120)
            .into_iter()
            .map(|mut c| {
                c.cfg = RunConfig { seed: c.cfg.seed, ..RunConfig::quick(c.cfg.mem, 120) };
                c
            })
            .collect::<Vec<_>>();
        let out = run_cells_with(&cells, 2);
        assert_eq!(out.len(), 2);
        for (cell, r) in cells.iter().zip(&out) {
            let m = r.metrics().expect("cell completed");
            assert_eq!(m.bench, cell.bench);
        }
    }

    #[test]
    fn a_panicking_cell_does_not_kill_the_sweep() {
        let good = Cell { bench: "libquantum".into(), cfg: RunConfig::quick(MemKind::Ddr3, 100) };
        let bad = Cell { bench: "no-such-bench".into(), cfg: RunConfig::quick(MemKind::Rl, 100) };
        let out = run_cells_with(&[bad, good], 2);
        match &out[0] {
            CellResult::Failed { bench, mem, error } => {
                assert_eq!(bench, "no-such-bench");
                assert_eq!(*mem, MemKind::Rl);
                assert!(error.contains("unknown benchmark"), "error = {error}");
            }
            CellResult::Done(..) => panic!("bad cell should fail"),
        }
        assert!(out[1].metrics().is_some());
    }

    #[test]
    fn jobs_is_positive() {
        assert!(jobs() >= 1);
    }
}
