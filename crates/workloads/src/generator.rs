//! Seeded statistical trace generation from a [`BenchmarkProfile`].
//!
//! The generator emits an infinite stream of [`TraceOp`]s organised into
//! *bursts*: each burst picks one pattern (by the profile's mix weights),
//! a fresh program counter (so the stride prefetcher can train on it) and
//! walks it for a bounded number of operations, separated by non-memory
//! instruction gaps around the profile's `mem_gap`.
//!
//! The sequential-scan pattern is **line-granular**: each step touches a
//! fresh cache line at the burst's start word, optionally followed (with
//! probability `followup`) by 1–3 accesses to that line's other words.
//! This reproduces what the paper's Figure 3a shows at the DRAM level —
//! for streaming codes, the overwhelming majority of accesses to a line
//! target one word, so the critical word is highly predictable and the
//! rest of the line is not urgently needed.

use cpu_model::{TraceOp, TraceSource};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::profile::BenchmarkProfile;

/// Size of the reuse-heavy hot region per pattern (fits in the shared L2).
const HOT_REGION_BYTES: u64 = 256 * 1024;
/// Pointer-chase traffic concentrates in a bounded region so that lines
/// are re-fetched from DRAM on realistic timescales (the per-line
/// critical-word regularity of Figure 3 requires revisits).
const CHASE_REGION_BYTES: u64 = 24 * 1024 * 1024;
/// Chance a chase access deviates from its line's habitual word.
const CHASE_WORD_NOISE: f64 = 0.15;
/// Burst lengths (operations per pattern instance).
const BURST_MIN: u32 = 48;
const BURST_MAX: u32 = 320;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Pattern {
    Seq,
    Stride,
    Chase,
    Hot,
}

#[derive(Debug)]
struct Burst {
    pattern: Pattern,
    /// Current line base (Seq/Stride) or unused (Chase/Hot).
    line: u64,
    /// Stride in bytes between consecutive elements (Seq: 64).
    step: u64,
    /// Start word within each line (Seq) — fixed per burst (alignment).
    start_word: u64,
    /// Pending same-line follow-up accesses: (next word offset, remaining).
    followup_left: u32,
    followup_word: u64,
    remaining: u32,
    pc: u64,
}

/// An infinite, deterministic trace for one core of one benchmark.
#[derive(Debug)]
pub struct TraceGen {
    profile: BenchmarkProfile,
    rng: StdRng,
    /// Base of this core's address space (0 for shared workloads).
    base: u64,
    footprint: u64,
    burst: Option<Burst>,
    pc_counter: u64,
    /// Pending memory op (gaps are emitted before it).
    pending: Option<TraceOp>,
    /// Position within the current memory-op cluster.
    cluster_pos: u64,
    /// Memory operations emitted so far — the phase clock for profiles
    /// with a [`crate::PhaseShift`] schedule.
    phase_ops: u64,
}

impl TraceGen {
    /// Build a generator for `core` with a deterministic `seed`.
    ///
    /// Multiprogrammed (SPEC) workloads give each core a disjoint address
    /// space; multithreaded (NPB/STREAM) workloads share one space.
    #[must_use]
    pub fn new(profile: &BenchmarkProfile, core: u8, seed: u64) -> Self {
        let base = if profile.shared_address_space() {
            0
        } else {
            // 8 GiB apart: never aliases within any modelled footprint.
            u64::from(core) << 33
        };
        TraceGen {
            footprint: profile.footprint_lines() * 64,
            profile: profile.clone(),
            rng: StdRng::seed_from_u64(seed ^ (u64::from(core) << 48) ^ 0x5EED_CAFE),
            base,
            burst: None,
            pc_counter: 0,
            pending: None,
            // Random initial phase de-synchronises the cores' miss bursts.
            cluster_pos: u64::from(core).wrapping_mul(3) % 8,
            phase_ops: 0,
        }
    }

    fn pick_pattern(&mut self) -> Pattern {
        let m = self.profile.mix;
        let total = m.seq + m.stride + m.chase + m.hot;
        let x = self.rng.random::<f64>() * total;
        if x < m.seq {
            Pattern::Seq
        } else if x < m.seq + m.stride {
            Pattern::Stride
        } else if x < m.seq + m.stride + m.chase {
            Pattern::Chase
        } else {
            Pattern::Hot
        }
    }

    /// Random line start within `lines` candidate lines from the footprint
    /// base — confined to the active phase window when the profile has a
    /// [`crate::PhaseShift`] schedule.
    fn windowed_line(&mut self, lines: u64) -> u64 {
        match self.profile.phases {
            None => self.base + self.rng.random_range(0..lines) * 64,
            Some(ps) => {
                let windows = u64::from(ps.windows.max(1));
                let window_lines = (lines / windows).max(1);
                let window = (self.phase_ops / u64::from(ps.period_ops.max(1))) % windows;
                self.base + (window * window_lines + self.rng.random_range(0..window_lines)) * 64
            }
        }
    }

    /// Random byte address of a line start within the footprint.
    fn random_line(&mut self) -> u64 {
        let lines = (self.footprint / 64).max(1);
        self.windowed_line(lines)
    }

    /// Random line within the bounded chase region. Phase-shifted
    /// profiles chase across the active window instead: the window already
    /// bounds the revisit timescale, and moving it *is* the stress.
    fn random_chase_line(&mut self) -> u64 {
        let cap = if self.profile.phases.is_some() { self.footprint } else { CHASE_REGION_BYTES };
        let lines = (self.footprint.min(cap) / 64).max(1);
        self.windowed_line(lines)
    }

    /// The habitual word of `line` under this profile's chase bias —
    /// stable across visits, which is exactly the per-line critical-word
    /// regularity the paper observes (Figure 3) and the adaptive placement
    /// exploits (§4.2.5).
    fn line_word(&self, line_addr: u64) -> u64 {
        habitual_chase_word(&self.profile, line_addr)
    }

    fn start_burst(&mut self) {
        let pattern = self.pick_pattern();
        self.pc_counter += 1;
        let pc = 0x1000 + self.pc_counter * 8;
        let remaining = self.rng.random_range(BURST_MIN..=BURST_MAX);
        let aligned = self.rng.random::<f64>() < self.profile.word0_align;
        let start_word = if aligned { 0 } else { self.rng.random_range(1..8u64) };
        let line = self.random_line();
        let burst = match pattern {
            Pattern::Seq => Burst {
                pattern,
                line,
                step: 64,
                start_word,
                followup_left: 0,
                followup_word: 0,
                remaining,
                pc,
            },
            Pattern::Stride => {
                // Strides are line-granular or larger; non-multiples of the
                // line size rotate the touched word (lbm/milc-style).
                let step = u64::from(self.profile.stride_bytes.max(64)) & !7;
                Burst {
                    pattern,
                    line,
                    step,
                    start_word,
                    followup_left: 0,
                    followup_word: 0,
                    remaining,
                    pc,
                }
            }
            Pattern::Chase | Pattern::Hot => Burst {
                pattern,
                line,
                step: 0,
                start_word: 0,
                followup_left: 0,
                followup_word: 0,
                remaining,
                pc,
            },
        };
        self.burst = Some(burst);
    }

    /// Produce the next memory operation, advancing burst state.
    fn next_mem_op(&mut self) -> TraceOp {
        self.phase_ops += 1;
        if self.burst.as_ref().is_none_or(|b| b.remaining == 0 && b.followup_left == 0) {
            self.start_burst();
        }
        let pattern = self.burst.as_ref().expect("burst just started").pattern;
        let pc = self.burst.as_ref().expect("burst").pc;
        let addr = match pattern {
            Pattern::Seq => {
                // Serve pending same-line follow-ups first.
                let (fu_left, line) = {
                    let b = self.burst.as_ref().expect("burst");
                    (b.followup_left, b.line)
                };
                if fu_left > 0 {
                    let b = self.burst.as_mut().expect("burst");
                    b.followup_left -= 1;
                    b.followup_word = (b.followup_word + 1) % 8;
                    line + b.followup_word * 8
                } else {
                    let fu = self.rng.random::<f64>() < self.profile.followup;
                    let fu_count = if fu { self.rng.random_range(1..=3u32) } else { 0 };
                    let b = self.burst.as_mut().expect("burst");
                    let a = b.line + b.start_word * 8;
                    b.followup_left = fu_count;
                    b.followup_word = b.start_word;
                    b.remaining = b.remaining.saturating_sub(1);
                    b.line = b.line.wrapping_add(b.step);
                    if b.line >= self.base + self.footprint {
                        b.line = self.base + (b.line - self.base) % self.footprint;
                    }
                    a
                }
            }
            Pattern::Stride => {
                let b = self.burst.as_mut().expect("burst");
                let a = b.line + b.start_word * 8;
                b.remaining -= 1;
                b.line = b.line.wrapping_add(b.step);
                if !b.step.is_multiple_of(64) {
                    // Non-line-multiple strides walk the word offset too.
                    b.start_word = (b.start_word + b.step / 8) % 8;
                }
                if b.line >= self.base + self.footprint {
                    b.line = self.base + (b.line - self.base) % self.footprint;
                }
                a & !7
            }
            Pattern::Chase => {
                let line = self.random_chase_line();
                let word = if self.rng.random::<f64>() < CHASE_WORD_NOISE {
                    self.rng.random_range(0..8u64)
                } else {
                    self.line_word(line)
                };
                self.burst.as_mut().expect("burst").remaining -= 1;
                line + word * 8
            }
            Pattern::Hot => {
                // Hot-region reuse walks an array of structures: accesses
                // favour the leading word with the profile's alignment
                // bias, like the scan patterns (Appendix A).
                let hot_base = self.base + ((self.footprint / 2) & !63);
                let line = self.rng.random_range(0..HOT_REGION_BYTES / 64) * 64;
                let word = if self.rng.random::<f64>() < self.profile.word0_align {
                    0
                } else {
                    self.rng.random_range(0..8u64)
                };
                self.burst.as_mut().expect("burst").remaining -= 1;
                hot_base + line + word * 8
            }
        };
        if self.rng.random::<f64>() < self.profile.write_frac {
            TraceOp::Store { addr, pc }
        } else {
            TraceOp::Load { addr, pc }
        }
    }
}

/// Memory operations per dense cluster (see [`TraceSource`] impl).
const CLUSTER_LEN: u64 = 8;

/// The habitual (per-line stable) word that `profile`'s pointer-chase
/// traffic reads first on `line_addr` — the steady-state prediction of the
/// paper's adaptive placement for lines in the chase region.
#[must_use]
pub fn habitual_chase_word(profile: &BenchmarkProfile, line_addr: u64) -> u64 {
    let h = (line_addr >> 6).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    let u = (h >> 11) as f64 / (1u64 << 53) as f64;
    match profile.chase_word_bias {
        None => (h >> 61) & 7,
        Some(bias) => {
            let mut acc = 0.0;
            for (w, p) in bias.iter().enumerate() {
                acc += p;
                if u < acc {
                    return w as u64;
                }
            }
            7
        }
    }
}

/// Is `addr` inside some core's pointer-chase region for this profile?
/// Returns the habitual word if so. Used to seed the adaptive placement's
/// steady state: over the paper's billion-cycle windows, every regularly
/// written line has been re-organised at least once; our scaled-down
/// windows reach that state by construction instead.
#[must_use]
pub fn steady_state_tag(profile: &BenchmarkProfile, addr: u64) -> Option<u8> {
    if profile.write_frac <= 0.0 || profile.mix.chase <= 0.0 {
        return None;
    }
    let chase_bytes = (profile.footprint_lines() * 64).min(CHASE_REGION_BYTES);
    let offset = if profile.shared_address_space() {
        addr
    } else {
        addr & ((1 << 33) - 1) // strip the per-core base
    };
    if offset < chase_bytes {
        Some(habitual_chase_word(profile, addr) as u8)
    } else {
        None
    }
}

impl TraceSource for TraceGen {
    /// Memory operations arrive in *clusters*: `CLUSTER_LEN` ops separated
    /// by short gaps, followed by a long compute phase, preserving the
    /// profile's mean `mem_gap`. Real out-of-order cores extract
    /// memory-level parallelism exactly because misses cluster inside the
    /// ROB window; evenly spaced misses would serialize every DRAM access.
    fn next_op(&mut self) -> TraceOp {
        if let Some(op) = self.pending.take() {
            return op;
        }
        let gap = u64::from(self.profile.mem_gap);
        let g = if gap <= 1 {
            1
        } else {
            let intra = (gap / 8).max(3);
            let inter = (gap * CLUSTER_LEN).saturating_sub(intra * (CLUSTER_LEN - 1)).max(intra);
            self.cluster_pos = (self.cluster_pos + 1) % CLUSTER_LEN;
            let base = if self.cluster_pos == 0 { inter } else { intra };
            // ±25% jitter keeps cores from locking step.
            self.rng.random_range(base - base / 4..=base + base / 4)
        };
        self.pending = Some(self.next_mem_op());
        TraceOp::Gap(g as u32)
    }

    fn save_ckpt(&self, w: &mut cwf_ckpt::Writer) -> cwf_ckpt::Result<()> {
        self.save_gen_state(w);
        Ok(())
    }

    fn load_ckpt(&mut self, r: &mut cwf_ckpt::Reader<'_>) -> cwf_ckpt::Result<()> {
        self.load_gen_state(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::by_name;
    use std::collections::HashMap;

    /// Drive a generator and collect the word index of each line's *first*
    /// access — a proxy for the DRAM-level critical word distribution.
    fn first_touch_words(name: &str, n: usize) -> [u64; 8] {
        let mut g = TraceGen::new(by_name(name).unwrap(), 0, 7);
        let mut seen: HashMap<u64, ()> = HashMap::new();
        let mut hist = [0u64; 8];
        let mut count = 0;
        while count < n {
            if let TraceOp::Load { addr, .. } | TraceOp::Store { addr, .. } = g.next_op() {
                let line = addr >> 6;
                if seen.insert(line, ()).is_none() {
                    hist[((addr >> 3) & 7) as usize] += 1;
                    count += 1;
                }
            }
        }
        hist
    }

    #[test]
    fn streaming_benchmarks_are_word0_biased() {
        for name in ["stream", "libquantum", "leslie3d", "lu", "mg"] {
            let hist = first_touch_words(name, 4000);
            let total: u64 = hist.iter().sum();
            let w0 = hist[0] as f64 / total as f64;
            assert!(w0 > 0.5, "{name}: word0 fraction {w0:.2} should exceed 0.5");
        }
    }

    #[test]
    fn pointer_chasers_are_not_word0_biased() {
        for name in ["mcf", "omnetpp", "xalancbmk", "astar"] {
            let hist = first_touch_words(name, 4000);
            let total: u64 = hist.iter().sum();
            let w0 = hist[0] as f64 / total as f64;
            assert!(w0 < 0.5, "{name}: word0 fraction {w0:.2} should be below 0.5");
        }
    }

    #[test]
    fn mcf_prefers_words_0_and_3() {
        let hist = first_touch_words("mcf", 6000);
        let total: u64 = hist.iter().sum::<u64>();
        let f = |w: usize| hist[w] as f64 / total as f64;
        assert!(f(0) > f(1) + 0.05, "word0 {:.2} vs word1 {:.2}", f(0), f(1));
        assert!(f(3) > f(1) + 0.05, "word3 {:.2} vs word1 {:.2}", f(3), f(1));
    }

    #[test]
    fn seq_scans_rarely_revisit_lines_when_followup_is_low() {
        // Figure 3a behaviour: element-per-line streams.
        let mut g = TraceGen::new(by_name("stream").unwrap(), 0, 3);
        let mut last_line = u64::MAX;
        let (mut same, mut total) = (0u64, 0u64);
        for _ in 0..20_000 {
            if let TraceOp::Load { addr, .. } | TraceOp::Store { addr, .. } = g.next_op() {
                let line = addr >> 6;
                if line == last_line {
                    same += 1;
                }
                last_line = line;
                total += 1;
            }
        }
        assert!(
            (same as f64 / total as f64) < 0.10,
            "stream revisit rate {:.3} should be tiny",
            same as f64 / total as f64
        );
    }

    #[test]
    fn tonto_revisits_lines_promptly() {
        // §6.1.1: tonto's second access usually arrives before the line.
        let mut g = TraceGen::new(by_name("tonto").unwrap(), 0, 3);
        let mut last_line = u64::MAX;
        let (mut same, mut total) = (0u64, 0u64);
        for _ in 0..40_000 {
            if let TraceOp::Load { addr, .. } | TraceOp::Store { addr, .. } = g.next_op() {
                let line = addr >> 6;
                if line == last_line {
                    same += 1;
                }
                last_line = line;
                total += 1;
            }
        }
        assert!(
            (same as f64 / total as f64) > 0.15,
            "tonto revisit rate {:.3} should be substantial",
            same as f64 / total as f64
        );
    }

    #[test]
    fn determinism_same_seed() {
        let p = by_name("cg").unwrap();
        let mut a = TraceGen::new(p, 0, 11);
        let mut b = TraceGen::new(p, 0, 11);
        for _ in 0..1000 {
            assert_eq!(a.next_op(), b.next_op());
        }
    }

    #[test]
    fn different_cores_use_disjoint_spaces_for_spec() {
        let p = by_name("mcf").unwrap();
        let mut g0 = TraceGen::new(p, 0, 5);
        let mut g1 = TraceGen::new(p, 1, 5);
        let addr = |g: &mut TraceGen| loop {
            if let TraceOp::Load { addr, .. } | TraceOp::Store { addr, .. } = g.next_op() {
                return addr;
            }
        };
        for _ in 0..200 {
            let a0 = addr(&mut g0);
            let a1 = addr(&mut g1);
            assert!(a0 < (1 << 33));
            assert!(((1 << 33)..(2u64 << 33)).contains(&a1));
        }
    }

    #[test]
    fn npb_cores_share_one_space() {
        let p = by_name("cg").unwrap();
        let mut g1 = TraceGen::new(p, 1, 5);
        for _ in 0..200 {
            if let TraceOp::Load { addr, .. } | TraceOp::Store { addr, .. } = g1.next_op() {
                assert!(addr < p.footprint_lines() * 64 + (1 << 20));
            }
        }
    }

    #[test]
    fn gaps_track_memory_intensity() {
        let gap_of = |name: &str| {
            let mut g = TraceGen::new(by_name(name).unwrap(), 0, 3);
            let mut gaps = 0u64;
            let mut n = 0u64;
            for _ in 0..4000 {
                if let TraceOp::Gap(k) = g.next_op() {
                    gaps += u64::from(k);
                    n += 1;
                }
            }
            gaps as f64 / n as f64
        };
        assert!(gap_of("stream") < gap_of("gobmk"), "stream is far more intensive");
    }

    #[test]
    fn write_fractions_are_respected() {
        let mut g = TraceGen::new(by_name("lbm").unwrap(), 0, 9);
        let (mut loads, mut stores) = (0u64, 0u64);
        for _ in 0..20_000 {
            match g.next_op() {
                TraceOp::Load { .. } => loads += 1,
                TraceOp::Store { .. } => stores += 1,
                TraceOp::Gap(_) => {}
            }
        }
        let frac = stores as f64 / (loads + stores) as f64;
        assert!((frac - 0.40).abs() < 0.05, "lbm write fraction {frac:.2}");
    }

    #[test]
    fn addresses_are_word_aligned() {
        let mut g = TraceGen::new(by_name("milc").unwrap(), 0, 13);
        for _ in 0..5000 {
            if let TraceOp::Load { addr, .. } | TraceOp::Store { addr, .. } = g.next_op() {
                assert_eq!(addr % 8, 0);
            }
        }
    }

    /// Collect `n` distinct touched lines (relative to base 0).
    fn touched_lines(g: &mut TraceGen, n: usize) -> std::collections::HashSet<u64> {
        let mut lines = std::collections::HashSet::new();
        while lines.len() < n {
            if let TraceOp::Load { addr, .. } | TraceOp::Store { addr, .. } = g.next_op() {
                lines.insert(addr >> 6);
            }
        }
        lines
    }

    #[test]
    fn phase_shift_rotates_the_active_window() {
        let p = by_name("dcsweep").unwrap();
        let shift = p.phases.unwrap();
        let window_lines = p.footprint_lines() / u64::from(shift.windows);
        let mut g = TraceGen::new(p, 0, 17);
        // Phase 0 burst starts live in window 0. Lines may walk slightly
        // past the window edge (bursts stride forward), so allow one
        // burst's worth of overshoot.
        let slack = u64::from(BURST_MAX) * u64::from(p.stride_bytes.max(64)) / 64;
        let first = touched_lines(&mut g, 500);
        assert!(first.iter().all(|&l| l < window_lines + slack), "phase 0 must stay near window 0");
        // Burn through to a later phase: the window must have moved.
        for _ in 0..shift.period_ops * 3 {
            let _ = g.next_mem_op();
        }
        let later = touched_lines(&mut g, 500);
        assert!(
            later.iter().any(|&l| l >= 2 * window_lines),
            "after three periods the window must have rotated"
        );
    }

    #[test]
    fn phase_profiles_touch_more_lines_than_the_dram_cache_holds() {
        // 2048 sets x 4 ways = 8192 lines: both stressors must exceed it
        // comfortably within a modest op budget.
        for name in ["dcsweep", "dcthrash"] {
            let mut g = TraceGen::new(by_name(name).unwrap(), 0, 23);
            let lines = touched_lines(&mut g, 12_000);
            assert!(lines.len() >= 12_000, "{name} must overflow the cache");
        }
    }

    #[test]
    fn phase_clock_survives_a_checkpoint() {
        let p = by_name("dcthrash").unwrap();
        let mut a = TraceGen::new(p, 0, 31);
        // Park mid-phase so the clock matters.
        for _ in 0..2500 {
            let _ = a.next_op();
        }
        let mut w = cwf_ckpt::Writer::new();
        a.save_ckpt(&mut w).unwrap();
        let bytes = w.into_vec();
        let mut b = TraceGen::new(p, 0, 999);
        b.load_ckpt(&mut cwf_ckpt::Reader::new(&bytes)).unwrap();
        assert_eq!(a.phase_ops, b.phase_ops);
        for _ in 0..10_000 {
            assert_eq!(a.next_op(), b.next_op());
        }
    }

    #[test]
    fn strided_word_rotation_for_odd_strides() {
        // lbm's 152-byte stride touches a rotating word offset.
        let mut g = TraceGen::new(by_name("lbm").unwrap(), 0, 21);
        let mut words_seen = std::collections::HashSet::new();
        for _ in 0..30_000 {
            if let TraceOp::Load { addr, .. } | TraceOp::Store { addr, .. } = g.next_op() {
                words_seen.insert((addr >> 3) & 7);
            }
        }
        assert!(words_seen.len() >= 6, "rotation covers most words: {words_seen:?}");
    }
}

impl cwf_ckpt::Ckpt for Pattern {
    fn save(&self, w: &mut cwf_ckpt::Writer) {
        w.put_u8(match self {
            Pattern::Seq => 0,
            Pattern::Stride => 1,
            Pattern::Chase => 2,
            Pattern::Hot => 3,
        });
    }
    fn load(r: &mut cwf_ckpt::Reader<'_>) -> cwf_ckpt::Result<Self> {
        Ok(match r.get_u8()? {
            0 => Pattern::Seq,
            1 => Pattern::Stride,
            2 => Pattern::Chase,
            3 => Pattern::Hot,
            v => return Err(cwf_ckpt::CkptError::new(format!("invalid Pattern tag {v}"))),
        })
    }
}

cwf_ckpt::ckpt_struct!(Burst {
    pattern,
    line,
    step,
    start_word,
    followup_left,
    followup_word,
    remaining,
    pc,
});

impl TraceGen {
    fn save_gen_state(&self, w: &mut cwf_ckpt::Writer) {
        let TraceGen {
            profile: _,
            rng,
            base,
            footprint,
            burst,
            pc_counter,
            pending,
            cluster_pos,
            phase_ops,
        } = self;
        w.section(b"TGEN");
        cwf_ckpt::Ckpt::save(&rng.state(), w);
        cwf_ckpt::Ckpt::save(base, w);
        cwf_ckpt::Ckpt::save(footprint, w);
        cwf_ckpt::Ckpt::save(burst, w);
        cwf_ckpt::Ckpt::save(pc_counter, w);
        cwf_ckpt::Ckpt::save(pending, w);
        cwf_ckpt::Ckpt::save(cluster_pos, w);
        cwf_ckpt::Ckpt::save(phase_ops, w);
    }

    fn load_gen_state(&mut self, r: &mut cwf_ckpt::Reader<'_>) -> cwf_ckpt::Result<()> {
        r.expect_section(b"TGEN")?;
        self.rng = StdRng::from_state(cwf_ckpt::Ckpt::load(r)?);
        self.base = cwf_ckpt::Ckpt::load(r)?;
        self.footprint = cwf_ckpt::Ckpt::load(r)?;
        self.burst = cwf_ckpt::Ckpt::load(r)?;
        self.pc_counter = cwf_ckpt::Ckpt::load(r)?;
        self.pending = cwf_ckpt::Ckpt::load(r)?;
        self.cluster_pos = cwf_ckpt::Ckpt::load(r)?;
        self.phase_ops = cwf_ckpt::Ckpt::load(r)?;
        Ok(())
    }
}
