#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! Synthetic workloads standing in for the paper's benchmark suite.
//!
//! The paper evaluates on SPEC CPU2006 (multiprogrammed: 8 copies, one per
//! core), the OpenMP NAS Parallel Benchmarks and STREAM (multithreaded).
//! We cannot execute those binaries, so each program is modelled by a
//! [`BenchmarkProfile`]: a statistical description of its memory behaviour
//! (intensity, footprint, pattern mix, write fraction, word alignment)
//! from which a seeded [`TraceGen`] produces an instruction trace.
//!
//! The *mechanism* the paper exploits — critical-word regularity — is
//! produced by construction, exactly as the paper's Appendix A explains
//! real programs produce it: sequential scans over aligned arrays make
//! word 0 the first-touched (critical) word of nearly every line, small
//! strides favour early words, and pointer chasing spreads criticality
//! uniformly. Profiles are calibrated to the paper's Figure 4 (21 of 27
//! programs have >50% word-0 critical accesses; astar, lbm, mcf, milc,
//! omnetpp and xalancbmk do not) and to its per-benchmark descriptions
//! (mcf biased to words 0 *and* 3, hmmer ≈90% word 0, etc.).
//!
//! Beyond the paper's 27 programs, [`dc_stress`] adds three synthetic
//! DRAM-cache stressors: `dcsweep` and `dcthrash` defeat the hybrid
//! backend's 16 MiB tags-in-DRAM cache with migrating working sets
//! ([`PhaseShift`]), while `dcresident` is the cache's best case — a
//! stationary set that overflows the LLC but fits in the cache. All
//! three are reachable through [`by_name`] but deliberately kept out of
//! [`suite`] so every paper-facing figure stays pinned.
//!
//! # Examples
//!
//! ```
//! use workloads::{by_name, TraceGen};
//! use cpu_model::{TraceOp, TraceSource};
//!
//! let profile = by_name("leslie3d").unwrap();
//! let mut generator = TraceGen::new(profile, 0, 42);
//! // Traces are infinite streams of gaps and memory operations.
//! for _ in 0..100 {
//!     let _op: TraceOp = generator.next_op();
//! }
//! ```

pub mod generator;
pub mod profile;
pub mod tracefile;

pub use generator::{habitual_chase_word, steady_state_tag, TraceGen};
pub use profile::{by_name, dc_stress, suite, BenchmarkProfile, PatternMix, PhaseShift, Suite};
pub use tracefile::{dump, FileTraceSource, ParseTraceError};
