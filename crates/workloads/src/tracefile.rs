//! Trace file I/O: dump generated traces and replay external ones.
//!
//! The simulator normally drives its synthetic generators directly, but
//! USIMM-style workflows exchange traces as files. This module defines a
//! simple line-oriented text format and a [`FileTraceSource`] that replays
//! it (looping at EOF, since the core model consumes an infinite stream):
//!
//! ```text
//! # comment
//! G 12            # 12 non-memory instructions
//! L 7f001040 1a08 # load,  hex byte address, hex pc
//! S 7f001080 1a10 # store, hex byte address, hex pc
//! ```

use std::io::{BufRead, Write};

use cpu_model::{TraceOp, TraceSource};

/// Errors arising while parsing a trace file.
#[derive(Debug)]
pub enum ParseTraceError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A malformed record, with its 1-based line number.
    Malformed {
        /// Line number of the offending record.
        line: usize,
        /// The offending text.
        text: String,
    },
    /// The file contains no records.
    Empty,
}

impl std::fmt::Display for ParseTraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseTraceError::Io(e) => write!(f, "trace i/o error: {e}"),
            ParseTraceError::Malformed { line, text } => {
                write!(f, "malformed trace record at line {line}: {text:?}")
            }
            ParseTraceError::Empty => write!(f, "trace file contains no records"),
        }
    }
}

impl std::error::Error for ParseTraceError {}

impl From<std::io::Error> for ParseTraceError {
    fn from(e: std::io::Error) -> Self {
        ParseTraceError::Io(e)
    }
}

/// Serialize one record in the text format.
fn write_op<W: Write>(w: &mut W, op: &TraceOp) -> std::io::Result<()> {
    match op {
        TraceOp::Gap(n) => writeln!(w, "G {n}"),
        TraceOp::Load { addr, pc } => writeln!(w, "L {addr:x} {pc:x}"),
        TraceOp::Store { addr, pc } => writeln!(w, "S {addr:x} {pc:x}"),
    }
}

/// Dump `count` records from `source` to `w` (a writer may be a `File`,
/// a `Vec<u8>`, …).
///
/// # Errors
///
/// Propagates write failures.
pub fn dump<T: TraceSource + ?Sized, W: Write>(
    source: &mut T,
    count: u64,
    w: &mut W,
) -> std::io::Result<()> {
    for _ in 0..count {
        write_op(w, &source.next_op())?;
    }
    Ok(())
}

/// Parse a single record. Blank lines and `#` comments return `None`.
fn parse_line(line: &str) -> Result<Option<TraceOp>, ()> {
    let body = line.split('#').next().unwrap_or("").trim();
    if body.is_empty() {
        return Ok(None);
    }
    let mut parts = body.split_whitespace();
    let kind = parts.next().ok_or(())?;
    let op = match kind {
        "G" => {
            let n: u32 = parts.next().ok_or(())?.parse().map_err(|_| ())?;
            TraceOp::Gap(n)
        }
        "L" | "S" => {
            let addr = u64::from_str_radix(parts.next().ok_or(())?, 16).map_err(|_| ())?;
            let pc = u64::from_str_radix(parts.next().ok_or(())?, 16).map_err(|_| ())?;
            if kind == "L" {
                TraceOp::Load { addr, pc }
            } else {
                TraceOp::Store { addr, pc }
            }
        }
        _ => return Err(()),
    };
    if parts.next().is_some() {
        return Err(());
    }
    Ok(Some(op))
}

/// An in-memory trace replayed as an infinite stream (loops at the end).
#[derive(Debug, Clone)]
pub struct FileTraceSource {
    ops: Vec<TraceOp>,
    pos: usize,
}

impl FileTraceSource {
    /// Parse a trace from any reader.
    ///
    /// # Errors
    ///
    /// [`ParseTraceError`] on I/O failure, malformed records, or an empty
    /// trace.
    pub fn parse<R: BufRead>(reader: R) -> Result<Self, ParseTraceError> {
        let mut ops = Vec::new();
        for (i, line) in reader.lines().enumerate() {
            let line = line?;
            match parse_line(&line) {
                Ok(Some(op)) => ops.push(op),
                Ok(None) => {}
                Err(()) => return Err(ParseTraceError::Malformed { line: i + 1, text: line }),
            }
        }
        if ops.is_empty() {
            return Err(ParseTraceError::Empty);
        }
        Ok(FileTraceSource { ops, pos: 0 })
    }

    /// Load a trace from a file path.
    ///
    /// # Errors
    ///
    /// See [`FileTraceSource::parse`].
    pub fn open<P: AsRef<std::path::Path>>(path: P) -> Result<Self, ParseTraceError> {
        let f = std::fs::File::open(path)?;
        Self::parse(std::io::BufReader::new(f))
    }

    /// Number of records in one pass of the trace.
    #[must_use]
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Start replay at record `pos % len` (phase-shifting copies of one
    /// trace across cores avoids lockstep behaviour).
    #[must_use]
    pub fn starting_at(mut self, pos: usize) -> Self {
        self.pos = pos % self.ops.len();
        self
    }

    /// Always false: construction rejects empty traces.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }
}

impl TraceSource for FileTraceSource {
    fn next_op(&mut self) -> TraceOp {
        let op = self.ops[self.pos];
        self.pos = (self.pos + 1) % self.ops.len();
        op
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{by_name, TraceGen};

    #[test]
    fn roundtrip_through_the_text_format() {
        let mut gen = TraceGen::new(by_name("mcf").unwrap(), 0, 42);
        let mut buf = Vec::new();
        dump(&mut gen, 500, &mut buf).unwrap();
        let mut replay = FileTraceSource::parse(buf.as_slice()).unwrap();
        assert_eq!(replay.len(), 500);
        // A fresh generator with the same seed produces the same stream.
        let mut fresh = TraceGen::new(by_name("mcf").unwrap(), 0, 42);
        for _ in 0..500 {
            assert_eq!(replay.next_op(), fresh.next_op());
        }
    }

    #[test]
    fn replay_loops_at_eof() {
        let trace = "G 3\nL 40 1000\n";
        let mut t = FileTraceSource::parse(trace.as_bytes()).unwrap();
        assert_eq!(t.next_op(), TraceOp::Gap(3));
        assert_eq!(t.next_op(), TraceOp::Load { addr: 0x40, pc: 0x1000 });
        assert_eq!(t.next_op(), TraceOp::Gap(3), "wrapped around");
    }

    #[test]
    fn comments_and_blanks_are_ignored() {
        let trace = "# header\n\nG 1  # inline comment\n  \nS ff88 2a\n";
        let t = FileTraceSource::parse(trace.as_bytes()).unwrap();
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn malformed_records_are_rejected_with_line_numbers() {
        for (bad, line) in [("G x\n", 1), ("L 40\n", 1), ("G 1\nQ 2 3\n", 2), ("L 40 50 60\n", 1)] {
            match FileTraceSource::parse(bad.as_bytes()) {
                Err(ParseTraceError::Malformed { line: l, .. }) => assert_eq!(l, line, "{bad:?}"),
                other => panic!("{bad:?}: expected Malformed, got {other:?}"),
            }
        }
    }

    #[test]
    fn starting_at_phase_shifts() {
        let trace = "G 1\nG 2\nG 3\n";
        let mut t = FileTraceSource::parse(trace.as_bytes()).unwrap().starting_at(2);
        assert_eq!(t.next_op(), TraceOp::Gap(3));
        assert_eq!(t.next_op(), TraceOp::Gap(1));
    }

    #[test]
    fn empty_trace_is_an_error() {
        assert!(matches!(
            FileTraceSource::parse("# only comments\n".as_bytes()),
            Err(ParseTraceError::Empty)
        ));
    }

    #[test]
    fn file_roundtrip() {
        let path = std::env::temp_dir().join("cwfmem_trace_test.trc");
        let mut gen = TraceGen::new(by_name("stream").unwrap(), 1, 7);
        let mut f = std::fs::File::create(&path).unwrap();
        dump(&mut gen, 100, &mut f).unwrap();
        let t = FileTraceSource::open(&path).unwrap();
        assert_eq!(t.len(), 100);
        let _ = std::fs::remove_file(path);
    }
}
