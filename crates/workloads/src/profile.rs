//! The 27 benchmark profiles (SPEC CPU2006, NPB, STREAM), plus the
//! DRAM-cache stress pair ([`dc_stress`]).
//!
//! Every field is a calibration knob documented on [`BenchmarkProfile`];
//! the values below were tuned so that the LLC-filtered DRAM access stream
//! reproduces the qualitative behaviour the paper reports per benchmark:
//! which programs are memory-intensive, which have word-0-dominated
//! critical words (Figure 4), and which chase pointers.

/// Benchmark suite a profile belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Suite {
    /// SPEC CPU2006, run as 8 copies (one per core, disjoint address spaces).
    Spec2006,
    /// NAS Parallel Benchmarks (OpenMP): one thread per core, shared space.
    Npb,
    /// The STREAM bandwidth kernel (multithreaded, shared space).
    Stream,
    /// Synthetic DRAM-cache stressors (multithreaded, shared space): not
    /// part of the paper's 27-program suite, so they never perturb the
    /// Figure-4 / speedup pins. See [`dc_stress`].
    DcStress,
}

/// Periodic working-set migration: the footprint is split into `windows`
/// disjoint regions and the generator confines each phase's burst starts
/// to one of them, rotating every `period_ops` memory operations.
///
/// Phase shifts are what separate a DRAM cache from a static page
/// placement: a cache re-learns the hot window after every shift (a burst
/// of misses and evictions), while placement decisions made for the old
/// window go stale. The shifting stress profiles below rotate through
/// more window bytes than the default 16 MiB DRAM cache holds, so a
/// window is gone from the cache by the time the schedule returns to it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhaseShift {
    /// Memory operations per phase before the active window rotates.
    pub period_ops: u32,
    /// Number of disjoint footprint windows to rotate through.
    pub windows: u32,
}

/// Relative weights of the four access-pattern generators.
///
/// Weights need not sum to 1; they are normalised at generation time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PatternMix {
    /// Unit-stride scans over large arrays (word-0-critical producer).
    pub seq: f64,
    /// Fixed-stride walks (`stride_bytes` apart).
    pub stride: f64,
    /// Pointer chasing: random lines, random words (uniform criticality).
    pub chase: f64,
    /// Reuse-heavy accesses inside a small hot region (mostly cache hits).
    pub hot: f64,
}

/// A statistical model of one benchmark's memory behaviour.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchmarkProfile {
    /// Program name as in the paper's figures.
    pub name: &'static str,
    /// Suite (decides multiprogrammed vs multithreaded address spaces).
    pub suite: Suite,
    /// Mean non-memory instructions between memory operations (memory
    /// intensity: lower ⇒ more bandwidth demand).
    pub mem_gap: u32,
    /// Working-set size in MiB (per copy). Footprints ≫ 4 MiB defeat the
    /// shared L2 and generate DRAM traffic.
    pub footprint_mb: u32,
    /// Fraction of memory operations that are stores.
    pub write_frac: f64,
    /// Pattern mix.
    pub mix: PatternMix,
    /// Stride of the strided component, in bytes.
    pub stride_bytes: u32,
    /// Probability that a scan/stride burst starts line-aligned (word 0).
    /// High values produce the word-0 criticality bias of Figure 4.
    pub word0_align: f64,
    /// Per-word bias for the pointer-chase component (`None` = uniform).
    /// mcf uses this to make words 0 and 3 its favourites (Figure 3b).
    pub chase_word_bias: Option<[f64; 8]>,
    /// Probability that, right after a sequential scan first touches a
    /// line, the program also consumes 1–3 more words of that line before
    /// moving on. High values model codes whose "second access to a line
    /// arrives before the whole line returns" (paper §6.1.1: tonto,
    /// dealII); low values model element-per-line streams (Figure 3a).
    pub followup: f64,
    /// Optional phase-shift schedule (`None` for the paper's 27 programs:
    /// their working sets are statistically stationary at our timescales).
    pub phases: Option<PhaseShift>,
}

impl BenchmarkProfile {
    /// Working set in cache lines.
    #[must_use]
    pub fn footprint_lines(&self) -> u64 {
        u64::from(self.footprint_mb) * 1024 * 1024 / 64
    }

    /// True when all cores share one address space (NPB/STREAM).
    #[must_use]
    pub fn shared_address_space(&self) -> bool {
        self.suite != Suite::Spec2006
    }
}

/// mcf's chase bias: words 0 and 3 dominate (paper Figure 3b).
const MCF_BIAS: [f64; 8] = [0.28, 0.07, 0.07, 0.28, 0.08, 0.07, 0.08, 0.07];

macro_rules! bench {
    ($name:literal, $suite:ident, gap $gap:literal, fp $fp:literal, wr $wr:literal,
     mix($seq:literal, $stride:literal, $chase:literal, $hot:literal),
     sb $sb:literal, align $align:literal, fu $fu:literal $(, bias $bias:expr)?) => {
        BenchmarkProfile {
            name: $name,
            suite: Suite::$suite,
            mem_gap: $gap,
            footprint_mb: $fp,
            write_frac: $wr,
            mix: PatternMix { seq: $seq, stride: $stride, chase: $chase, hot: $hot },
            stride_bytes: $sb,
            word0_align: $align,
            chase_word_bias: bench!(@bias $($bias)?),
            followup: $fu,
            phases: None,
        }
    };
    (@bias) => { None };
    (@bias $bias:expr) => { Some($bias) };
}

/// The full 27-program suite of the paper (§5: NPB cg/is/ep/lu/mg/sp,
/// STREAM, and the listed SPEC CPU2006 programs plus GemsFDTD and wrf,
/// which appear in the evaluation figures).
static SUITE: [BenchmarkProfile; 27] = [
    // --- NAS Parallel Benchmarks (multithreaded, shared space) ---
    bench!("cg", Npb, gap 480, fp 160, wr 0.15, mix(0.45, 0.15, 0.10, 0.30), sb 128, align 0.92, fu 0.10),
    bench!("is", Npb, gap 520, fp 128, wr 0.30, mix(0.35, 0.10, 0.20, 0.35), sb 96, align 0.80, fu 0.30),
    bench!("ep", Npb, gap 900, fp 24, wr 0.10, mix(0.25, 0.05, 0.05, 0.65), sb 64, align 0.85, fu 0.30),
    bench!("lu", Npb, gap 440, fp 200, wr 0.25, mix(0.55, 0.10, 0.05, 0.30), sb 128, align 0.94, fu 0.08),
    bench!("mg", Npb, gap 400, fp 256, wr 0.25, mix(0.60, 0.13, 0.05, 0.22), sb 256, align 0.93, fu 0.08),
    bench!("sp", Npb, gap 420, fp 224, wr 0.25, mix(0.58, 0.13, 0.05, 0.24), sb 192, align 0.92, fu 0.08),
    // --- STREAM (multithreaded, shared space) ---
    bench!("stream", Stream, gap 380, fp 384, wr 0.33, mix(0.90, 0.05, 0.00, 0.05), sb 64, align 0.98, fu 0.02),
    // --- SPEC CPU2006 (8 copies, disjoint spaces) ---
    bench!("astar", Spec2006, gap 600, fp 96, wr 0.15, mix(0.10, 0.05, 0.40, 0.45), sb 96, align 0.40, fu 0.20),
    bench!("bzip2", Spec2006, gap 560, fp 96, wr 0.25, mix(0.25, 0.10, 0.20, 0.45), sb 80, align 0.76, fu 0.30),
    bench!("dealII", Spec2006, gap 540, fp 128, wr 0.20, mix(0.40, 0.12, 0.10, 0.38), sb 96, align 0.85, fu 0.60),
    bench!("GemsFDTD", Spec2006, gap 360, fp 288, wr 0.30, mix(0.65, 0.10, 0.03, 0.22), sb 128, align 0.95, fu 0.05),
    bench!("gobmk", Spec2006, gap 840, fp 48, wr 0.20, mix(0.20, 0.08, 0.17, 0.55), sb 80, align 0.72, fu 0.30),
    bench!("gromacs", Spec2006, gap 700, fp 64, wr 0.15, mix(0.30, 0.15, 0.08, 0.47), sb 96, align 0.78, fu 0.30),
    bench!("h264ref", Spec2006, gap 640, fp 64, wr 0.20, mix(0.30, 0.15, 0.08, 0.47), sb 80, align 0.78, fu 0.30),
    bench!("hmmer", Spec2006, gap 540, fp 56, wr 0.20, mix(0.50, 0.10, 0.03, 0.37), sb 64, align 0.95, fu 0.10),
    bench!("lbm", Spec2006, gap 330, fp 384, wr 0.40, mix(0.20, 0.40, 0.12, 0.28), sb 152, align 0.30, fu 0.10),
    bench!("leslie3d", Spec2006, gap 360, fp 320, wr 0.25, mix(0.65, 0.10, 0.03, 0.22), sb 128, align 0.96, fu 0.05),
    bench!("libquantum", Spec2006, gap 360, fp 256, wr 0.25, mix(0.75, 0.05, 0.00, 0.20), sb 128, align 0.97, fu 0.03),
    bench!("mcf", Spec2006, gap 380, fp 448, wr 0.20, mix(0.08, 0.10, 0.52, 0.30), sb 96, align 0.40, fu 0.15, bias MCF_BIAS),
    bench!("milc", Spec2006, gap 380, fp 320, wr 0.30, mix(0.18, 0.30, 0.24, 0.28), sb 272, align 0.35, fu 0.10),
    bench!("omnetpp", Spec2006, gap 450, fp 192, wr 0.25, mix(0.08, 0.08, 0.48, 0.36), sb 96, align 0.40, fu 0.20),
    bench!("sjeng", Spec2006, gap 760, fp 96, wr 0.20, mix(0.15, 0.10, 0.25, 0.50), sb 80, align 0.76, fu 0.30),
    bench!("soplex", Spec2006, gap 420, fp 256, wr 0.20, mix(0.40, 0.20, 0.12, 0.28), sb 144, align 0.76, fu 0.25),
    bench!("tonto", Spec2006, gap 600, fp 80, wr 0.20, mix(0.40, 0.15, 0.08, 0.37), sb 80, align 0.90, fu 0.65),
    bench!("wrf", Spec2006, gap 480, fp 160, wr 0.25, mix(0.45, 0.15, 0.06, 0.34), sb 96, align 0.85, fu 0.20),
    bench!("xalancbmk", Spec2006, gap 480, fp 160, wr 0.15, mix(0.08, 0.08, 0.52, 0.32), sb 96, align 0.35, fu 0.20),
    bench!("zeusmp", Spec2006, gap 440, fp 224, wr 0.25, mix(0.50, 0.15, 0.05, 0.30), sb 128, align 0.85, fu 0.20),
];

/// The three DRAM-cache stress generators, bracketing the default
/// 16 MiB (65536-set x 4-way) tags-in-DRAM cache from both sides:
///
/// * `dcsweep` — phase-shifted streaming scans: 64 MiB footprint (4x the
///   cache) split into 8 windows of 8 MiB, rotating every 6000 memory
///   operations. Word-0 aligned, so CWF placement looks good and the
///   DRAM cache pays a refill burst at every shift.
/// * `dcthrash` — phase-shifted pointer chasing: 32 MiB footprint in 4
///   windows of 8 MiB, uniform critical words, 30% writes so evictions
///   carry dirty victims back to the slow store. Rotation evicts a
///   window before the schedule returns to it (only 2 of 4 windows fit),
///   so the cache keeps relearning a working set it just lost.
/// * `dcresident` — the cache's best case: a stationary 12 MiB working
///   set that overflows the 4 MiB LLC but fits in the DRAM cache, so
///   after one warm pass the post-LLC stream hits in fast DRAM instead
///   of paying the slow store.
static DC_STRESS: [BenchmarkProfile; 3] = [
    BenchmarkProfile {
        name: "dcsweep",
        suite: Suite::DcStress,
        mem_gap: 360,
        footprint_mb: 64,
        write_frac: 0.20,
        mix: PatternMix { seq: 0.85, stride: 0.10, chase: 0.00, hot: 0.05 },
        stride_bytes: 128,
        word0_align: 0.95,
        chase_word_bias: None,
        followup: 0.05,
        phases: Some(PhaseShift { period_ops: 6000, windows: 8 }),
    },
    BenchmarkProfile {
        name: "dcthrash",
        suite: Suite::DcStress,
        mem_gap: 420,
        footprint_mb: 32,
        write_frac: 0.30,
        mix: PatternMix { seq: 0.10, stride: 0.10, chase: 0.60, hot: 0.20 },
        stride_bytes: 96,
        word0_align: 0.35,
        chase_word_bias: None,
        followup: 0.15,
        phases: Some(PhaseShift { period_ops: 4000, windows: 4 }),
    },
    BenchmarkProfile {
        name: "dcresident",
        suite: Suite::DcStress,
        mem_gap: 400,
        footprint_mb: 12,
        write_frac: 0.15,
        mix: PatternMix { seq: 0.45, stride: 0.15, chase: 0.30, hot: 0.10 },
        stride_bytes: 128,
        word0_align: 0.60,
        chase_word_bias: None,
        followup: 0.10,
        phases: None,
    },
];

/// All 27 benchmark profiles, in the paper's grouping order.
///
/// Deliberately excludes the [`dc_stress`] pair: everything that iterates
/// the suite (Figure 4, suite-mean speedups) stays pinned to the paper.
#[must_use]
pub fn suite() -> &'static [BenchmarkProfile] {
    &SUITE
}

/// The three synthetic DRAM-cache stress profiles (`dcsweep`,
/// `dcthrash`, `dcresident`).
#[must_use]
pub fn dc_stress() -> &'static [BenchmarkProfile] {
    &DC_STRESS
}

/// Look up a profile by its name (as it appears in the paper's figures),
/// including the [`dc_stress`] trio.
#[must_use]
pub fn by_name(name: &str) -> Option<&'static BenchmarkProfile> {
    SUITE.iter().chain(DC_STRESS.iter()).find(|p| p.name == name)
}

/// The six programs the paper singles out as having *no* word-0 bias
/// (Figure 4 discussion + Appendix A pointer-chasing analysis).
#[must_use]
pub fn unbiased_names() -> [&'static str; 6] {
    ["astar", "lbm", "mcf", "milc", "omnetpp", "xalancbmk"]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_27_unique_programs() {
        assert_eq!(suite().len(), 27);
        let mut names: Vec<_> = suite().iter().map(|p| p.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 27);
    }

    #[test]
    fn lookup_by_name() {
        assert_eq!(by_name("mcf").unwrap().footprint_mb, 448);
        assert!(by_name("doom").is_none());
    }

    #[test]
    fn npb_and_stream_share_address_space() {
        assert!(by_name("cg").unwrap().shared_address_space());
        assert!(by_name("stream").unwrap().shared_address_space());
        assert!(!by_name("mcf").unwrap().shared_address_space());
    }

    #[test]
    fn unbiased_programs_have_low_alignment_and_high_chase() {
        for name in unbiased_names() {
            let p = by_name(name).unwrap();
            let weight = p.mix.seq + p.mix.stride + p.mix.chase + p.mix.hot;
            let chase_share = p.mix.chase / weight;
            assert!(
                p.word0_align <= 0.5 || chase_share >= 0.4,
                "{name} should not produce word-0 bias"
            );
        }
    }

    #[test]
    fn mcf_bias_favours_words_0_and_3() {
        let bias = by_name("mcf").unwrap().chase_word_bias.unwrap();
        assert!(bias[0] > bias[1] * 2.0);
        assert!(bias[3] > bias[1] * 2.0);
        let sum: f64 = bias.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9, "bias must be a distribution");
    }

    #[test]
    fn footprints_exceed_llc_for_memory_intensive_programs() {
        // Every program the paper calls memory-intensive must spill the
        // 4 MiB L2 by a wide margin.
        for name in ["mcf", "lbm", "milc", "leslie3d", "libquantum", "stream", "mg"] {
            assert!(by_name(name).unwrap().footprint_mb >= 128, "{name}");
        }
    }

    #[test]
    fn footprint_lines_conversion() {
        assert_eq!(by_name("stream").unwrap().footprint_lines(), 384 * 1024 * 1024 / 64);
    }

    #[test]
    fn dc_stress_trio_is_reachable_but_not_in_the_suite() {
        assert_eq!(dc_stress().len(), 3);
        for p in dc_stress() {
            assert_eq!(p.suite, Suite::DcStress);
            assert!(p.shared_address_space());
            assert!(by_name(p.name).is_some(), "{} must resolve by name", p.name);
            assert!(
                !suite().iter().any(|s| s.name == p.name),
                "{} must stay out of suite()",
                p.name
            );
        }
        // The paper-facing suite is untouched.
        assert_eq!(suite().len(), 27);
    }

    #[test]
    fn dc_stress_footprints_bracket_the_dram_cache() {
        // Default DramCacheConfig: 65536 sets x 4 ways x 64 B = 16 MiB =
        // 262144 lines. The shifting stressors must rotate through more
        // than the cache holds; the resident one must overflow the 4 MiB
        // LLC yet fit in the cache.
        const CACHE_LINES: u64 = 262_144;
        const LLC_LINES: u64 = 65_536;
        for p in dc_stress() {
            match p.phases {
                Some(_) => assert!(
                    p.footprint_lines() > CACHE_LINES,
                    "{}: rotation footprint ({} lines) must exceed the cache",
                    p.name,
                    p.footprint_lines()
                ),
                None => assert!(
                    p.footprint_lines() > LLC_LINES && p.footprint_lines() < CACHE_LINES,
                    "{}: resident footprint ({} lines) must sit between LLC and cache",
                    p.name,
                    p.footprint_lines()
                ),
            }
        }
    }
}
