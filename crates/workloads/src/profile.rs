//! The 27 benchmark profiles (SPEC CPU2006, NPB, STREAM).
//!
//! Every field is a calibration knob documented on [`BenchmarkProfile`];
//! the values below were tuned so that the LLC-filtered DRAM access stream
//! reproduces the qualitative behaviour the paper reports per benchmark:
//! which programs are memory-intensive, which have word-0-dominated
//! critical words (Figure 4), and which chase pointers.

/// Benchmark suite a profile belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Suite {
    /// SPEC CPU2006, run as 8 copies (one per core, disjoint address spaces).
    Spec2006,
    /// NAS Parallel Benchmarks (OpenMP): one thread per core, shared space.
    Npb,
    /// The STREAM bandwidth kernel (multithreaded, shared space).
    Stream,
}

/// Relative weights of the four access-pattern generators.
///
/// Weights need not sum to 1; they are normalised at generation time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PatternMix {
    /// Unit-stride scans over large arrays (word-0-critical producer).
    pub seq: f64,
    /// Fixed-stride walks (`stride_bytes` apart).
    pub stride: f64,
    /// Pointer chasing: random lines, random words (uniform criticality).
    pub chase: f64,
    /// Reuse-heavy accesses inside a small hot region (mostly cache hits).
    pub hot: f64,
}

/// A statistical model of one benchmark's memory behaviour.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchmarkProfile {
    /// Program name as in the paper's figures.
    pub name: &'static str,
    /// Suite (decides multiprogrammed vs multithreaded address spaces).
    pub suite: Suite,
    /// Mean non-memory instructions between memory operations (memory
    /// intensity: lower ⇒ more bandwidth demand).
    pub mem_gap: u32,
    /// Working-set size in MiB (per copy). Footprints ≫ 4 MiB defeat the
    /// shared L2 and generate DRAM traffic.
    pub footprint_mb: u32,
    /// Fraction of memory operations that are stores.
    pub write_frac: f64,
    /// Pattern mix.
    pub mix: PatternMix,
    /// Stride of the strided component, in bytes.
    pub stride_bytes: u32,
    /// Probability that a scan/stride burst starts line-aligned (word 0).
    /// High values produce the word-0 criticality bias of Figure 4.
    pub word0_align: f64,
    /// Per-word bias for the pointer-chase component (`None` = uniform).
    /// mcf uses this to make words 0 and 3 its favourites (Figure 3b).
    pub chase_word_bias: Option<[f64; 8]>,
    /// Probability that, right after a sequential scan first touches a
    /// line, the program also consumes 1–3 more words of that line before
    /// moving on. High values model codes whose "second access to a line
    /// arrives before the whole line returns" (paper §6.1.1: tonto,
    /// dealII); low values model element-per-line streams (Figure 3a).
    pub followup: f64,
}

impl BenchmarkProfile {
    /// Working set in cache lines.
    #[must_use]
    pub fn footprint_lines(&self) -> u64 {
        u64::from(self.footprint_mb) * 1024 * 1024 / 64
    }

    /// True when all cores share one address space (NPB/STREAM).
    #[must_use]
    pub fn shared_address_space(&self) -> bool {
        self.suite != Suite::Spec2006
    }
}

/// mcf's chase bias: words 0 and 3 dominate (paper Figure 3b).
const MCF_BIAS: [f64; 8] = [0.28, 0.07, 0.07, 0.28, 0.08, 0.07, 0.08, 0.07];

macro_rules! bench {
    ($name:literal, $suite:ident, gap $gap:literal, fp $fp:literal, wr $wr:literal,
     mix($seq:literal, $stride:literal, $chase:literal, $hot:literal),
     sb $sb:literal, align $align:literal, fu $fu:literal $(, bias $bias:expr)?) => {
        BenchmarkProfile {
            name: $name,
            suite: Suite::$suite,
            mem_gap: $gap,
            footprint_mb: $fp,
            write_frac: $wr,
            mix: PatternMix { seq: $seq, stride: $stride, chase: $chase, hot: $hot },
            stride_bytes: $sb,
            word0_align: $align,
            chase_word_bias: bench!(@bias $($bias)?),
            followup: $fu,
        }
    };
    (@bias) => { None };
    (@bias $bias:expr) => { Some($bias) };
}

/// The full 27-program suite of the paper (§5: NPB cg/is/ep/lu/mg/sp,
/// STREAM, and the listed SPEC CPU2006 programs plus GemsFDTD and wrf,
/// which appear in the evaluation figures).
static SUITE: [BenchmarkProfile; 27] = [
    // --- NAS Parallel Benchmarks (multithreaded, shared space) ---
    bench!("cg", Npb, gap 480, fp 160, wr 0.15, mix(0.45, 0.15, 0.10, 0.30), sb 128, align 0.92, fu 0.10),
    bench!("is", Npb, gap 520, fp 128, wr 0.30, mix(0.35, 0.10, 0.20, 0.35), sb 96, align 0.80, fu 0.30),
    bench!("ep", Npb, gap 900, fp 24, wr 0.10, mix(0.25, 0.05, 0.05, 0.65), sb 64, align 0.85, fu 0.30),
    bench!("lu", Npb, gap 440, fp 200, wr 0.25, mix(0.55, 0.10, 0.05, 0.30), sb 128, align 0.94, fu 0.08),
    bench!("mg", Npb, gap 400, fp 256, wr 0.25, mix(0.60, 0.13, 0.05, 0.22), sb 256, align 0.93, fu 0.08),
    bench!("sp", Npb, gap 420, fp 224, wr 0.25, mix(0.58, 0.13, 0.05, 0.24), sb 192, align 0.92, fu 0.08),
    // --- STREAM (multithreaded, shared space) ---
    bench!("stream", Stream, gap 380, fp 384, wr 0.33, mix(0.90, 0.05, 0.00, 0.05), sb 64, align 0.98, fu 0.02),
    // --- SPEC CPU2006 (8 copies, disjoint spaces) ---
    bench!("astar", Spec2006, gap 600, fp 96, wr 0.15, mix(0.10, 0.05, 0.40, 0.45), sb 96, align 0.40, fu 0.20),
    bench!("bzip2", Spec2006, gap 560, fp 96, wr 0.25, mix(0.25, 0.10, 0.20, 0.45), sb 80, align 0.76, fu 0.30),
    bench!("dealII", Spec2006, gap 540, fp 128, wr 0.20, mix(0.40, 0.12, 0.10, 0.38), sb 96, align 0.85, fu 0.60),
    bench!("GemsFDTD", Spec2006, gap 360, fp 288, wr 0.30, mix(0.65, 0.10, 0.03, 0.22), sb 128, align 0.95, fu 0.05),
    bench!("gobmk", Spec2006, gap 840, fp 48, wr 0.20, mix(0.20, 0.08, 0.17, 0.55), sb 80, align 0.72, fu 0.30),
    bench!("gromacs", Spec2006, gap 700, fp 64, wr 0.15, mix(0.30, 0.15, 0.08, 0.47), sb 96, align 0.78, fu 0.30),
    bench!("h264ref", Spec2006, gap 640, fp 64, wr 0.20, mix(0.30, 0.15, 0.08, 0.47), sb 80, align 0.78, fu 0.30),
    bench!("hmmer", Spec2006, gap 540, fp 56, wr 0.20, mix(0.50, 0.10, 0.03, 0.37), sb 64, align 0.95, fu 0.10),
    bench!("lbm", Spec2006, gap 330, fp 384, wr 0.40, mix(0.20, 0.40, 0.12, 0.28), sb 152, align 0.30, fu 0.10),
    bench!("leslie3d", Spec2006, gap 360, fp 320, wr 0.25, mix(0.65, 0.10, 0.03, 0.22), sb 128, align 0.96, fu 0.05),
    bench!("libquantum", Spec2006, gap 360, fp 256, wr 0.25, mix(0.75, 0.05, 0.00, 0.20), sb 128, align 0.97, fu 0.03),
    bench!("mcf", Spec2006, gap 380, fp 448, wr 0.20, mix(0.08, 0.10, 0.52, 0.30), sb 96, align 0.40, fu 0.15, bias MCF_BIAS),
    bench!("milc", Spec2006, gap 380, fp 320, wr 0.30, mix(0.18, 0.30, 0.24, 0.28), sb 272, align 0.35, fu 0.10),
    bench!("omnetpp", Spec2006, gap 450, fp 192, wr 0.25, mix(0.08, 0.08, 0.48, 0.36), sb 96, align 0.40, fu 0.20),
    bench!("sjeng", Spec2006, gap 760, fp 96, wr 0.20, mix(0.15, 0.10, 0.25, 0.50), sb 80, align 0.76, fu 0.30),
    bench!("soplex", Spec2006, gap 420, fp 256, wr 0.20, mix(0.40, 0.20, 0.12, 0.28), sb 144, align 0.76, fu 0.25),
    bench!("tonto", Spec2006, gap 600, fp 80, wr 0.20, mix(0.40, 0.15, 0.08, 0.37), sb 80, align 0.90, fu 0.65),
    bench!("wrf", Spec2006, gap 480, fp 160, wr 0.25, mix(0.45, 0.15, 0.06, 0.34), sb 96, align 0.85, fu 0.20),
    bench!("xalancbmk", Spec2006, gap 480, fp 160, wr 0.15, mix(0.08, 0.08, 0.52, 0.32), sb 96, align 0.35, fu 0.20),
    bench!("zeusmp", Spec2006, gap 440, fp 224, wr 0.25, mix(0.50, 0.15, 0.05, 0.30), sb 128, align 0.85, fu 0.20),
];

/// All 27 benchmark profiles, in the paper's grouping order.
#[must_use]
pub fn suite() -> &'static [BenchmarkProfile] {
    &SUITE
}

/// Look up a profile by its name (as it appears in the paper's figures).
#[must_use]
pub fn by_name(name: &str) -> Option<&'static BenchmarkProfile> {
    SUITE.iter().find(|p| p.name == name)
}

/// The six programs the paper singles out as having *no* word-0 bias
/// (Figure 4 discussion + Appendix A pointer-chasing analysis).
#[must_use]
pub fn unbiased_names() -> [&'static str; 6] {
    ["astar", "lbm", "mcf", "milc", "omnetpp", "xalancbmk"]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_27_unique_programs() {
        assert_eq!(suite().len(), 27);
        let mut names: Vec<_> = suite().iter().map(|p| p.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 27);
    }

    #[test]
    fn lookup_by_name() {
        assert_eq!(by_name("mcf").unwrap().footprint_mb, 448);
        assert!(by_name("doom").is_none());
    }

    #[test]
    fn npb_and_stream_share_address_space() {
        assert!(by_name("cg").unwrap().shared_address_space());
        assert!(by_name("stream").unwrap().shared_address_space());
        assert!(!by_name("mcf").unwrap().shared_address_space());
    }

    #[test]
    fn unbiased_programs_have_low_alignment_and_high_chase() {
        for name in unbiased_names() {
            let p = by_name(name).unwrap();
            let weight = p.mix.seq + p.mix.stride + p.mix.chase + p.mix.hot;
            let chase_share = p.mix.chase / weight;
            assert!(
                p.word0_align <= 0.5 || chase_share >= 0.4,
                "{name} should not produce word-0 bias"
            );
        }
    }

    #[test]
    fn mcf_bias_favours_words_0_and_3() {
        let bias = by_name("mcf").unwrap().chase_word_bias.unwrap();
        assert!(bias[0] > bias[1] * 2.0);
        assert!(bias[3] > bias[1] * 2.0);
        let sum: f64 = bias.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9, "bias must be a distribution");
    }

    #[test]
    fn footprints_exceed_llc_for_memory_intensive_programs() {
        // Every program the paper calls memory-intensive must spill the
        // 4 MiB L2 by a wide margin.
        for name in ["mcf", "lbm", "milc", "leslie3d", "libquantum", "stream", "mg"] {
            assert!(by_name(name).unwrap().footprint_mb >= 128, "{name}");
        }
    }

    #[test]
    fn footprint_lines_conversion() {
        assert_eq!(by_name("stream").unwrap().footprint_lines(), 384 * 1024 * 1024 / 64);
    }
}
