//! Tests of the steady-state placement helpers and distribution
//! conformance of the trace generators.

use cpu_model::{TraceOp, TraceSource};
use workloads::{by_name, habitual_chase_word, steady_state_tag, suite, TraceGen};

#[test]
fn steady_tags_cover_exactly_the_chase_region() {
    let p = by_name("mcf").unwrap(); // SPEC: per-core 8 GiB bases
                                     // Inside core 0's chase region.
    assert!(steady_state_tag(p, 0).is_some());
    assert!(steady_state_tag(p, 24 * 1024 * 1024 - 64).is_some());
    // Outside it (but inside the footprint).
    assert!(steady_state_tag(p, 100 * 1024 * 1024).is_none());
    // Inside core 3's chase region (same offset, different base).
    let base3 = 3u64 << 33;
    assert!(steady_state_tag(p, base3 + 4096).is_some());
}

#[test]
fn steady_tags_match_the_generators_habitual_words() {
    let p = by_name("mcf").unwrap();
    for line in (0..1000u64).map(|i| i * 64) {
        let tag = steady_state_tag(p, line).expect("in chase region");
        assert_eq!(u64::from(tag), habitual_chase_word(p, line));
    }
}

#[test]
fn read_only_profiles_have_no_steady_tags() {
    // A profile with no writes can never re-organise a line (§4.2.5:
    // "unless a word is written to, its organization is not altered").
    let mut p = by_name("mcf").unwrap().clone();
    p.write_frac = 0.0;
    assert!(steady_state_tag(&p, 0).is_none());
}

#[test]
fn habitual_words_follow_the_bias_distribution() {
    let p = by_name("mcf").unwrap();
    let mut hist = [0u32; 8];
    for i in 0..80_000u64 {
        hist[habitual_chase_word(p, i * 64) as usize] += 1;
    }
    let total: u32 = hist.iter().sum();
    let frac = |w: usize| f64::from(hist[w]) / f64::from(total);
    // mcf's bias: words 0 and 3 at 28% each.
    assert!((frac(0) - 0.28).abs() < 0.02, "word0 {:.3}", frac(0));
    assert!((frac(3) - 0.28).abs() < 0.02, "word3 {:.3}", frac(3));
    assert!(frac(1) < 0.12);
}

#[test]
fn uniform_profiles_have_uniform_habitual_words() {
    let p = by_name("omnetpp").unwrap(); // no chase_word_bias
    let mut hist = [0u32; 8];
    for i in 0..80_000u64 {
        hist[habitual_chase_word(p, i * 64) as usize] += 1;
    }
    for (w, n) in hist.iter().enumerate() {
        let frac = f64::from(*n) / 80_000.0;
        assert!((frac - 0.125).abs() < 0.02, "word {w}: {frac:.3}");
    }
}

#[test]
fn every_profile_generates_valid_streams() {
    // Smoke-test the whole suite: addresses in range, gaps sane, and the
    // op mix contains all three record kinds.
    for p in suite() {
        let mut g = TraceGen::new(p, 0, 1);
        let (mut gaps, mut loads, mut stores) = (0u32, 0u32, 0u32);
        for _ in 0..3_000 {
            match g.next_op() {
                TraceOp::Gap(n) => {
                    assert!(n >= 1 && n < 20 * p.mem_gap.max(1), "{}: gap {n}", p.name);
                    gaps += 1;
                }
                TraceOp::Load { addr, pc } => {
                    assert_eq!(addr % 8, 0, "{}", p.name);
                    assert!(pc >= 0x1000);
                    loads += 1;
                }
                TraceOp::Store { addr, .. } => {
                    assert_eq!(addr % 8, 0, "{}", p.name);
                    stores += 1;
                }
            }
        }
        assert!(gaps > 0 && loads > 0, "{}", p.name);
        if p.write_frac > 0.05 {
            assert!(stores > 0, "{} should emit stores", p.name);
        }
    }
}
