//! Per-byte even parity, the lightweight check on the critical-word DIMM.
//!
//! Each critical word travels over a single x9 RLDRAM chip as eight 9-bit
//! beats: one data byte plus one parity bit per beat (§4.2.3). The eight
//! parity bits of a 64-bit word are packed into one byte here, parity of
//! byte *i* in bit *i*.

/// Compute the 8 even-parity bits of a 64-bit word (one per byte).
///
/// # Examples
///
/// ```
/// // 0x01 has one set bit -> odd population -> even-parity bit is 1.
/// assert_eq!(ecc::parity::byte_parity(0x01) & 1, 1);
/// // 0x03 has two set bits -> parity bit 0.
/// assert_eq!(ecc::parity::byte_parity(0x03) & 1, 0);
/// ```
#[must_use]
pub fn byte_parity(word: u64) -> u8 {
    let mut parity = 0u8;
    for byte in 0..8 {
        let b = ((word >> (byte * 8)) & 0xFF) as u8;
        parity |= ((b.count_ones() & 1) as u8) << byte;
    }
    parity
}

/// Verify a word against its stored per-byte parity bits.
///
/// Returns `true` when every byte's parity matches. Note that, as the paper
/// observes, parity cannot see an even number of flips within one byte —
/// such errors are caught later by SECDED over the full line.
#[must_use]
pub fn check_byte_parity(word: u64, stored: u8) -> bool {
    byte_parity(word) == stored
}

/// Identify which bytes of a word disagree with the stored parity.
///
/// Bit *i* of the result is set when byte *i* fails its parity check. Useful
/// for diagnostics and the fail-stop report the paper requires (§4.2.3:
/// "the point of failure will be precisely known").
#[must_use]
pub fn failing_bytes(word: u64, stored: u8) -> u8 {
    byte_parity(word) ^ stored
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_word_has_zero_parity() {
        assert_eq!(byte_parity(0), 0);
        assert!(check_byte_parity(0, 0));
    }

    #[test]
    fn all_ones_byte_parity() {
        // 0xFF has 8 set bits -> even -> parity 0 for that byte.
        assert_eq!(byte_parity(0xFF), 0);
        // 0x7F has 7 set bits -> parity 1 in bit 0.
        assert_eq!(byte_parity(0x7F), 1);
    }

    #[test]
    fn single_flip_in_any_byte_is_caught() {
        let w = 0x0102_0304_0506_0708u64;
        let p = byte_parity(w);
        for bit in 0..64 {
            let bad = w ^ (1u64 << bit);
            assert!(!check_byte_parity(bad, p), "bit {bit}");
            assert_eq!(failing_bytes(bad, p), 1 << (bit / 8));
        }
    }

    #[test]
    fn even_flips_within_a_byte_escape_parity() {
        // The documented blind spot: two flips in the same byte.
        let w = 0u64;
        let p = byte_parity(w);
        let bad = w ^ 0b11; // two flips in byte 0
        assert!(check_byte_parity(bad, p));
    }

    #[test]
    fn flips_in_different_bytes_are_both_reported() {
        let w = 0xAAAA_AAAA_AAAA_AAAAu64;
        let p = byte_parity(w);
        let bad = w ^ (1 << 3) ^ (1 << 60);
        assert_eq!(failing_bytes(bad, p), (1 << 0) | (1 << 7));
    }
}
