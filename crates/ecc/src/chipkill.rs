//! Chipkill-style symbol error correction.
//!
//! §4.2.3 of the paper notes that the lightweight-parity/fast-DIMM plus
//! full-ECC/slow-DIMM split "can also be extended to handle other fault
//! tolerance solutions such as chipkill". This module provides that
//! extension: a single-symbol-correct / double-symbol-detect (SSC-DSD)
//! code over 8-bit symbols, where each symbol maps to one x8 DRAM device
//! of the rank — so the failure of an *entire chip* corrupts exactly one
//! symbol per codeword and remains correctable.
//!
//! The construction is a shortened Reed–Solomon-style \[11,8\] code over
//! GF(2⁸) with **three** check symbols per codeword,
//!
//! * `P = Σ dᵢ`,
//! * `Q = Σ gᵢ·dᵢ`,
//! * `R = Σ gᵢ²·dᵢ`,
//!
//! giving minimum distance 4: any single-symbol error is located and
//! corrected from the syndrome ratios, and every double-symbol error is
//! detected by syndrome inconsistency. (Two check symbols would only give
//! distance 3, which cannot simultaneously correct singles and detect all
//! doubles — a property our own tests exercise.)

/// Number of data symbols per codeword (one per x8 data device).
pub const DATA_SYMBOLS: usize = 8;

/// GF(2^8) with the AES polynomial x^8 + x^4 + x^3 + x + 1 (0x11B).
fn gf_mul(mut a: u8, mut b: u8) -> u8 {
    let mut p = 0u8;
    while b != 0 {
        if b & 1 != 0 {
            p ^= a;
        }
        let hi = a & 0x80 != 0;
        a <<= 1;
        if hi {
            a ^= 0x1B;
        }
        b >>= 1;
    }
    p
}

fn gf_pow(mut a: u8, mut e: u32) -> u8 {
    let mut r = 1u8;
    while e > 0 {
        if e & 1 == 1 {
            r = gf_mul(r, a);
        }
        a = gf_mul(a, a);
        e >>= 1;
    }
    r
}

fn gf_inv(a: u8) -> u8 {
    // a^254 in GF(2^8).
    gf_pow(a, 254)
}

/// Per-position generator coefficients: gᵢ = 2^i (distinct, nonzero).
fn coeff(i: usize) -> u8 {
    gf_pow(2, i as u32)
}

/// The three check symbols of a codeword.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CheckSymbols {
    /// XOR parity symbol.
    pub p: u8,
    /// Weighted GF(2⁸) parity symbol (`Σ gᵢ·dᵢ`).
    pub q: u8,
    /// Squared-weight parity symbol (`Σ gᵢ²·dᵢ`).
    pub r: u8,
}

/// Decode result for one codeword.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SymbolDecoded {
    /// No error.
    Clean([u8; DATA_SYMBOLS]),
    /// One symbol (= one chip slice) corrected at `position`.
    Corrected {
        /// Recovered data.
        data: [u8; DATA_SYMBOLS],
        /// Index of the failed symbol (device).
        position: usize,
    },
    /// More than one symbol failed: detected, not correctable.
    MultiSymbolError,
}

impl SymbolDecoded {
    /// The recovered data, unless uncorrectable.
    #[must_use]
    pub fn data(self) -> Option<[u8; DATA_SYMBOLS]> {
        match self {
            SymbolDecoded::Clean(d) | SymbolDecoded::Corrected { data: d, .. } => Some(d),
            SymbolDecoded::MultiSymbolError => None,
        }
    }
}

/// Encode eight data symbols into their check symbols.
///
/// # Examples
///
/// ```
/// use ecc::chipkill::{encode, decode, SymbolDecoded};
/// let data = [1, 2, 3, 4, 5, 6, 7, 8];
/// let chk = encode(&data);
/// assert_eq!(decode(&data, chk), SymbolDecoded::Clean(data));
/// ```
#[must_use]
pub fn encode(data: &[u8; DATA_SYMBOLS]) -> CheckSymbols {
    let mut p = 0u8;
    let mut q = 0u8;
    let mut r = 0u8;
    for (i, &d) in data.iter().enumerate() {
        let g = coeff(i);
        p ^= d;
        q ^= gf_mul(g, d);
        r ^= gf_mul(gf_mul(g, g), d);
    }
    CheckSymbols { p, q, r }
}

/// Decode a possibly corrupted codeword against its stored checks.
///
/// Corrects any single-symbol error (including an error in a check
/// symbol) and detects double-symbol errors.
#[must_use]
pub fn decode(data: &[u8; DATA_SYMBOLS], stored: CheckSymbols) -> SymbolDecoded {
    let computed = encode(data);
    let s0 = computed.p ^ stored.p;
    let s1 = computed.q ^ stored.q;
    let s2 = computed.r ^ stored.r;
    let nonzero = u32::from(s0 != 0) + u32::from(s1 != 0) + u32::from(s2 != 0);
    match nonzero {
        0 => SymbolDecoded::Clean(*data),
        1 => {
            // Exactly one check symbol disagrees: the error is in that
            // check symbol itself; the data is intact. (A single data
            // error always perturbs all three syndromes.)
            SymbolDecoded::Corrected { data: *data, position: DATA_SYMBOLS }
        }
        _ => {
            // A single data error at position i with value e gives
            // s0 = e, s1 = gᵢ·e, s2 = gᵢ²·e — so all three are nonzero
            // and s1² = s0·s2 with s1/s0 equal to some coefficient.
            if s0 != 0 && s1 != 0 && s2 != 0 && gf_mul(s1, s1) == gf_mul(s0, s2) {
                let ratio = gf_mul(s1, gf_inv(s0));
                for i in 0..DATA_SYMBOLS {
                    if coeff(i) == ratio {
                        let mut fixed = *data;
                        fixed[i] ^= s0;
                        return SymbolDecoded::Corrected { data: fixed, position: i };
                    }
                }
            }
            SymbolDecoded::MultiSymbolError
        }
    }
}

/// Encode a 64-byte cache line as eight interleaved codewords: byte `j`
/// of word `i` goes to symbol `i` of codeword `j`, so each x8 device
/// contributes exactly one symbol to every codeword — a whole-chip
/// failure stays single-symbol-correctable.
#[must_use]
pub fn encode_line(words: &[u64; 8]) -> [CheckSymbols; 8] {
    let mut out = [CheckSymbols { p: 0, q: 0, r: 0 }; 8];
    for (j, o) in out.iter_mut().enumerate() {
        let mut cw = [0u8; DATA_SYMBOLS];
        for (i, w) in words.iter().enumerate() {
            cw[i] = ((w >> (j * 8)) & 0xFF) as u8;
        }
        *o = encode(&cw);
    }
    out
}

/// Decode a 64-byte line, correcting the failure of one whole device.
///
/// Returns the corrected words, or `None` if any codeword saw a
/// multi-symbol error.
#[must_use]
pub fn decode_line(words: &[u64; 8], checks: &[CheckSymbols; 8]) -> Option<[u64; 8]> {
    let mut out = [0u64; 8];
    for (j, check) in checks.iter().enumerate() {
        let mut cw = [0u8; DATA_SYMBOLS];
        for (i, w) in words.iter().enumerate() {
            cw[i] = ((w >> (j * 8)) & 0xFF) as u8;
        }
        let fixed = decode(&cw, *check).data()?;
        for (i, b) in fixed.iter().enumerate() {
            out[i] |= u64::from(*b) << (j * 8);
        }
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gf_field_sanity() {
        assert_eq!(gf_mul(1, 77), 77);
        assert_eq!(gf_mul(0, 77), 0);
        for a in 1..=255u8 {
            assert_eq!(gf_mul(a, gf_inv(a)), 1, "a={a}");
        }
        // Coefficients are distinct and nonzero.
        let cs: Vec<u8> = (0..8).map(coeff).collect();
        let mut dedup = cs.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), 8);
        assert!(cs.iter().all(|&c| c != 0));
    }

    #[test]
    fn corrects_any_single_symbol_any_value() {
        let data = [0x11, 0x22, 0x33, 0x44, 0x55, 0x66, 0x77, 0x88];
        let chk = encode(&data);
        for pos in 0..8 {
            for err in [0x01u8, 0x80, 0xFF, 0x5A] {
                let mut bad = data;
                bad[pos] ^= err;
                assert_eq!(
                    decode(&bad, chk),
                    SymbolDecoded::Corrected { data, position: pos },
                    "pos {pos} err {err:#x}"
                );
            }
        }
    }

    #[test]
    fn detects_double_symbol_errors() {
        let data = [9, 8, 7, 6, 5, 4, 3, 2];
        let chk = encode(&data);
        let mut bad = data;
        bad[0] ^= 0x0F;
        bad[5] ^= 0xF0;
        assert_eq!(decode(&bad, chk), SymbolDecoded::MultiSymbolError);
    }

    #[test]
    fn check_symbol_error_leaves_data_intact() {
        let data = [1, 1, 2, 3, 5, 8, 13, 21];
        let mut chk = encode(&data);
        chk.p ^= 0x42;
        let out = decode(&data, chk);
        assert_eq!(out.data(), Some(data));
    }

    #[test]
    fn whole_chip_failure_on_a_line_is_corrected() {
        // Device 3 (symbol 3 of every codeword) returns garbage.
        let words = [
            0x0102_0304_0506_0708u64,
            0x1112_1314_1516_1718,
            0x2122_2324_2526_2728,
            0x3132_3334_3536_3738,
            0x4142_4344_4546_4748,
            0x5152_5354_5556_5758,
            0x6162_6364_6566_6768,
            0x7172_7374_7576_7778,
        ];
        let checks = encode_line(&words);
        let mut bad = words;
        bad[3] = 0xDEAD_BEEF_0BAD_F00D; // entire device-3 slice corrupted
        assert_eq!(decode_line(&bad, &checks), Some(words));
    }

    #[test]
    fn two_chip_failure_is_detected_not_miscorrected() {
        let words = [1u64, 2, 3, 4, 5, 6, 7, 8];
        let checks = encode_line(&words);
        let mut bad = words;
        // Both faults land in byte lane 0 — codeword 0 sees two bad
        // symbols (devices 1 and 6), which is beyond SSC-DSD correction.
        bad[1] ^= 0xFF;
        bad[6] ^= 0xFF;
        assert_eq!(decode_line(&bad, &checks), None);
    }

    #[test]
    fn roundtrip_random_lines() {
        let mut x = 0x1234_5678_9ABC_DEF0u64;
        for _ in 0..200 {
            let mut words = [0u64; 8];
            for w in &mut words {
                x = x.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
                *w = x;
            }
            let checks = encode_line(&words);
            assert_eq!(decode_line(&words, &checks), Some(words));
        }
    }
}
