#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! Error-detection and correction codes for the CWF heterogeneous memory.
//!
//! The paper's design (§4.2.3) splits a cache line between a low-latency
//! DIMM (the critical word, protected by a **per-byte parity** bit on the x9
//! RLDRAM chip) and a low-power DIMM (the remaining words plus the line's
//! **SECDED** code). A waiting instruction is woken by the critical word
//! after a parity check only; full single-error-correct / double-error-detect
//! coverage is restored when the rest of the line and its ECC arrive.
//!
//! This crate implements both codes for 64-bit words and 64-byte lines:
//!
//! * [`secded`] — a Hamming(72,64) SECDED code (8 check bits per 64-bit
//!   word), the classical scheme behind the paper's baseline "SECDED ECC on
//!   a 72-bit DDR3 channel".
//! * [`parity`] — even per-byte parity, one bit per byte (the 9th bit of the
//!   x9 RLDRAM chip).
//! * [`chipkill`] — the §4.2.3 extension: a single-symbol-correct /
//!   double-symbol-detect code over 8-bit symbols that survives the
//!   failure of an entire x8 device.
//! * [`inject`] — deterministic fault injection used by the failure-handling
//!   tests and examples.
//!
//! # Examples
//!
//! ```
//! use ecc::secded::{encode, decode, Decoded};
//!
//! let word = 0xDEAD_BEEF_0BAD_F00Du64;
//! let code = encode(word);
//! // A single flipped data bit is corrected.
//! let corrupted = word ^ (1 << 17);
//! assert_eq!(decode(corrupted, code), Decoded::Corrected(word));
//! ```

pub mod chipkill;
pub mod inject;
pub mod parity;
pub mod secded;

pub use parity::{byte_parity, check_byte_parity};
pub use secded::{decode, encode, Decoded};

/// Outcome of the paper's two-stage check on an arriving critical word.
///
/// The critical word is forwarded to the waiting instruction immediately iff
/// the parity check passes; otherwise the consumer must wait for the full
/// line plus SECDED (§4.2.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CriticalWordCheck {
    /// Parity clean — forward the word before the rest of the line arrives.
    ForwardEarly,
    /// Parity error — hold the instruction until SECDED over the full line.
    WaitForSecded,
}

/// Perform the RLDRAM-side parity check on a critical word.
///
/// `stored_parity` is the 8-bit per-byte parity fetched alongside the word
/// (the 9th bit of each of the eight beats on the x9 chip).
#[must_use]
pub fn check_critical_word(word: u64, stored_parity: u8) -> CriticalWordCheck {
    if check_byte_parity(word, stored_parity) {
        CriticalWordCheck::ForwardEarly
    } else {
        CriticalWordCheck::WaitForSecded
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_word_forwards_early() {
        let w = 0x0123_4567_89AB_CDEF;
        let p = byte_parity(w);
        assert_eq!(check_critical_word(w, p), CriticalWordCheck::ForwardEarly);
    }

    #[test]
    fn single_bit_flip_waits_for_secded() {
        let w = 0x0123_4567_89AB_CDEF;
        let p = byte_parity(w);
        assert_eq!(check_critical_word(w ^ (1 << 5), p), CriticalWordCheck::WaitForSecded);
    }
}
