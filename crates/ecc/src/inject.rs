//! Deterministic fault injection for exercising the parity/SECDED paths.
//!
//! The simulator's failure-handling tests and the `fault_injection` example
//! use this module to flip bits in stored words with a seeded RNG, then
//! verify that the CWF early-wake protocol degrades exactly as the paper
//! describes: parity-visible errors defer the wake to the SECDED check,
//! parity-invisible multi-bit errors commit and are fail-stopped by SECDED
//! a few cycles later.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// A seeded source of bit-flip faults.
#[derive(Debug)]
pub struct FaultInjector {
    rng: StdRng,
    /// Probability that a given word access suffers at least one flip.
    pub word_error_rate: f64,
    /// Probability that an error event flips a second bit as well.
    pub double_bit_rate: f64,
}

impl FaultInjector {
    /// Create an injector with the given seed and error rates.
    ///
    /// # Panics
    ///
    /// Panics if either rate is outside `[0, 1]`.
    #[must_use]
    pub fn new(seed: u64, word_error_rate: f64, double_bit_rate: f64) -> Self {
        assert!((0.0..=1.0).contains(&word_error_rate), "word_error_rate must be a probability");
        assert!((0.0..=1.0).contains(&double_bit_rate), "double_bit_rate must be a probability");
        Self { rng: StdRng::seed_from_u64(seed), word_error_rate, double_bit_rate }
    }

    /// Possibly corrupt `word`, returning the (maybe flipped) value and the
    /// number of bits flipped (0, 1 or 2).
    pub fn corrupt(&mut self, word: u64) -> (u64, u32) {
        if !self.rng.random_bool(self.word_error_rate) {
            return (word, 0);
        }
        let first = self.rng.random_range(0..64u32);
        let mut out = word ^ (1u64 << first);
        let mut flips = 1;
        if self.rng.random_bool(self.double_bit_rate) {
            let mut second = self.rng.random_range(0..64u32);
            if second == first {
                second = (second + 1) % 64;
            }
            out ^= 1u64 << second;
            flips = 2;
        }
        (out, flips)
    }

    /// Flip exactly `n` distinct bits of `word` (for directed tests).
    ///
    /// # Panics
    ///
    /// Panics if `n > 64`.
    pub fn flip_exact(&mut self, word: u64, n: u32) -> u64 {
        assert!(n <= 64, "cannot flip more than 64 distinct bits");
        let mut flipped = 0u64;
        let mut out = word;
        let mut remaining = n;
        while remaining > 0 {
            let bit = self.rng.random_range(0..64u32);
            if flipped & (1u64 << bit) == 0 {
                flipped |= 1u64 << bit;
                out ^= 1u64 << bit;
                remaining -= 1;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::secded::{decode, encode, Decoded};

    #[test]
    fn zero_rate_never_corrupts() {
        let mut inj = FaultInjector::new(1, 0.0, 0.0);
        for i in 0..1000u64 {
            assert_eq!(inj.corrupt(i), (i, 0));
        }
    }

    #[test]
    fn unit_rate_always_corrupts() {
        let mut inj = FaultInjector::new(2, 1.0, 0.0);
        for i in 0..1000u64 {
            let (w, flips) = inj.corrupt(i);
            assert_eq!(flips, 1);
            assert_eq!((w ^ i).count_ones(), 1);
        }
    }

    #[test]
    fn flip_exact_flips_exactly_n() {
        let mut inj = FaultInjector::new(3, 1.0, 1.0);
        for n in 0..=8 {
            let out = inj.flip_exact(0, n);
            assert_eq!(out.count_ones(), n);
        }
    }

    #[test]
    fn injected_singles_always_corrected_by_secded() {
        let mut inj = FaultInjector::new(4, 1.0, 0.0);
        for i in 0..200u64 {
            let w = i.wrapping_mul(0x9E37_79B9_7F4A_7C15);
            let code = encode(w);
            let (bad, _) = inj.corrupt(w);
            assert_eq!(decode(bad, code), Decoded::Corrected(w));
        }
    }

    #[test]
    fn injected_doubles_always_detected_by_secded() {
        let mut inj = FaultInjector::new(5, 1.0, 1.0);
        for i in 0..200u64 {
            let w = i.wrapping_mul(0xD134_2543_DE82_EF95);
            let code = encode(w);
            let bad = inj.flip_exact(w, 2);
            assert_eq!(decode(bad, code), Decoded::DoubleError);
        }
    }

    #[test]
    fn determinism_across_identical_seeds() {
        let mut a = FaultInjector::new(7, 0.5, 0.5);
        let mut b = FaultInjector::new(7, 0.5, 0.5);
        for i in 0..100u64 {
            assert_eq!(a.corrupt(i), b.corrupt(i));
        }
    }
}
