//! Hamming(72,64) single-error-correct / double-error-detect code.
//!
//! This is the classical extended Hamming code used by 72-bit ECC DIMMs:
//! seven Hamming check bits at codeword positions 1, 2, 4, …, 64 plus one
//! overall parity bit. Eight check bits protect each 64-bit word, which is
//! exactly the x8 ECC device on the paper's baseline 9-device DDR3 rank.

/// Number of data bits protected per codeword.
pub const DATA_BITS: u32 = 64;
/// Number of check bits per codeword (7 Hamming + 1 overall parity).
pub const CHECK_BITS: u32 = 8;
/// Highest occupied codeword position (positions 1..=71 are used).
const MAX_POS: u32 = 71;

/// Result of decoding a (possibly corrupted) codeword.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Decoded {
    /// No error detected; the payload is the stored data word.
    Clean(u64),
    /// A single-bit error was detected and corrected.
    Corrected(u64),
    /// A double-bit error was detected; the data cannot be recovered.
    DoubleError,
}

impl Decoded {
    /// The recovered data word, if the codeword was clean or correctable.
    #[must_use]
    pub fn data(self) -> Option<u64> {
        match self {
            Decoded::Clean(w) | Decoded::Corrected(w) => Some(w),
            Decoded::DoubleError => None,
        }
    }
}

/// Returns `true` if `pos` holds a Hamming check bit (powers of two).
fn is_check_pos(pos: u32) -> bool {
    pos.is_power_of_two()
}

/// Spread the 64 data bits over codeword positions 3,5,6,7,9,… (skipping
/// power-of-two positions). Bit `i` of the return value is codeword
/// position `i`; position 0 is reserved for the overall parity bit.
fn spread(data: u64) -> u128 {
    let mut word = 0u128;
    let mut bit = 0u32;
    for pos in 1..=MAX_POS {
        if is_check_pos(pos) {
            continue;
        }
        if (data >> bit) & 1 == 1 {
            word |= 1u128 << pos;
        }
        bit += 1;
    }
    debug_assert_eq!(bit, DATA_BITS);
    word
}

/// Inverse of [`spread`]: collect data bits back out of codeword positions.
fn gather(word: u128) -> u64 {
    let mut data = 0u64;
    let mut bit = 0u32;
    for pos in 1..=MAX_POS {
        if is_check_pos(pos) {
            continue;
        }
        if (word >> pos) & 1 == 1 {
            data |= 1u64 << bit;
        }
        bit += 1;
    }
    data
}

/// Compute the seven Hamming check bits over the spread codeword.
fn hamming_checks(word: u128) -> u8 {
    let mut checks = 0u8;
    for (i, c) in (0..7).map(|i| (i, 1u32 << i)) {
        let mut parity = 0u32;
        for pos in 1..=MAX_POS {
            if pos & c != 0 && !is_check_pos(pos) && (word >> pos) & 1 == 1 {
                parity ^= 1;
            }
        }
        checks |= (parity as u8) << i;
    }
    checks
}

/// Encode a 64-bit data word, returning its 8 SECDED check bits.
///
/// Bits 0–6 of the result are the Hamming check bits; bit 7 is the overall
/// (even) parity over data and check bits together.
///
/// # Examples
///
/// ```
/// let code = ecc::secded::encode(42);
/// assert_eq!(ecc::secded::decode(42, code), ecc::secded::Decoded::Clean(42));
/// ```
#[must_use]
pub fn encode(data: u64) -> u8 {
    let word = spread(data);
    let checks = hamming_checks(word);
    let overall = (word.count_ones() + u32::from(checks.count_ones() as u8)) & 1;
    checks | ((overall as u8) << 7)
}

/// Decode a data word against its stored check bits.
///
/// Corrects any single-bit error in either the data or the check bits and
/// detects (without correcting) any double-bit error.
///
/// # Examples
///
/// ```
/// use ecc::secded::{encode, decode, Decoded};
/// let code = encode(7);
/// assert_eq!(decode(7 ^ 0b100, code), Decoded::Corrected(7));
/// ```
#[must_use]
pub fn decode(data: u64, stored_checks: u8) -> Decoded {
    let word = spread(data);
    let computed = hamming_checks(word);
    let stored_hamming = stored_checks & 0x7F;
    let syndrome = u32::from(computed ^ stored_hamming);

    let overall_stored = (stored_checks >> 7) & 1;
    let overall_computed = ((word.count_ones() + stored_hamming.count_ones()) & 1) as u8;
    let parity_mismatch = overall_stored != overall_computed;

    match (syndrome, parity_mismatch) {
        (0, false) => Decoded::Clean(data),
        // Error confined to the overall-parity bit: data is intact.
        (0, true) => Decoded::Corrected(data),
        (s, true) => {
            if s > MAX_POS {
                // Syndrome points outside the codeword: multi-bit corruption
                // that aliases; report as (at least) a double error.
                return Decoded::DoubleError;
            }
            if is_check_pos(s) {
                // A check bit flipped; the data word itself is intact.
                Decoded::Corrected(data)
            } else {
                Decoded::Corrected(gather(word ^ (1u128 << s)))
            }
        }
        (_, false) => Decoded::DoubleError,
    }
}

/// Encode a full 64-byte cache line, returning the 8 check bytes that the
/// baseline stores on the ninth (ECC) device of a rank.
#[must_use]
pub fn encode_line(words: &[u64; 8]) -> [u8; 8] {
    let mut out = [0u8; 8];
    for (o, w) in out.iter_mut().zip(words.iter()) {
        *o = encode(*w);
    }
    out
}

/// Decode a full 64-byte cache line against its 8 check bytes.
///
/// Returns the per-word decode results; the caller decides whether a
/// [`Decoded::DoubleError`] is a fail-stop condition (it is, in both the
/// baseline and the CWF design — §4.2.3).
#[must_use]
pub fn decode_line(words: &[u64; 8], checks: &[u8; 8]) -> [Decoded; 8] {
    let mut out = [Decoded::Clean(0); 8];
    for i in 0..8 {
        out[i] = decode(words[i], checks[i]);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_clean() {
        for &w in &[0u64, u64::MAX, 0xA5A5_A5A5_5A5A_5A5A, 1, 1 << 63] {
            assert_eq!(decode(w, encode(w)), Decoded::Clean(w));
        }
    }

    #[test]
    fn corrects_every_single_data_bit() {
        let w = 0x0123_4567_89AB_CDEF;
        let code = encode(w);
        for bit in 0..64 {
            let corrupted = w ^ (1u64 << bit);
            assert_eq!(decode(corrupted, code), Decoded::Corrected(w), "bit {bit}");
        }
    }

    #[test]
    fn corrects_every_single_check_bit() {
        let w = 0xFEED_FACE_CAFE_BEEF;
        let code = encode(w);
        for bit in 0..8 {
            let corrupted_code = code ^ (1u8 << bit);
            assert_eq!(decode(w, corrupted_code), Decoded::Corrected(w), "check bit {bit}");
        }
    }

    #[test]
    fn detects_double_data_bit_errors() {
        let w = 0x1111_2222_3333_4444;
        let code = encode(w);
        for (a, b) in [(0u32, 1u32), (5, 40), (63, 0), (17, 18), (31, 32)] {
            let corrupted = w ^ (1u64 << a) ^ (1u64 << b);
            assert_eq!(decode(corrupted, code), Decoded::DoubleError, "bits {a},{b}");
        }
    }

    #[test]
    fn detects_data_plus_check_double_error() {
        let w = 0x5555_AAAA_5555_AAAA;
        let code = encode(w);
        assert_eq!(decode(w ^ 1, code ^ 1), Decoded::DoubleError);
    }

    #[test]
    fn line_roundtrip() {
        let words = [1u64, 2, 3, 4, 5, 6, 7, 8];
        let checks = encode_line(&words);
        for (i, d) in decode_line(&words, &checks).iter().enumerate() {
            assert_eq!(*d, Decoded::Clean(words[i]));
        }
    }

    #[test]
    fn line_corrects_one_word_independently() {
        let words = [10u64, 20, 30, 40, 50, 60, 70, 80];
        let checks = encode_line(&words);
        let mut bad = words;
        bad[3] ^= 1 << 9;
        let decoded = decode_line(&bad, &checks);
        assert_eq!(decoded[3], Decoded::Corrected(40));
        assert_eq!(decoded[0], Decoded::Clean(10));
    }
}
