//! Property tests of the three ECC codes: SECDED(72,64), per-byte parity
//! and the chipkill SSC-DSD symbol code.

use ecc::chipkill::{self, SymbolDecoded};
use ecc::parity::{byte_parity, check_byte_parity};
use ecc::secded::{decode, encode, Decoded};
use proptest::prelude::*;

proptest! {
    #[test]
    fn secded_roundtrip(word in any::<u64>()) {
        prop_assert_eq!(decode(word, encode(word)), Decoded::Clean(word));
    }

    #[test]
    fn secded_corrects_every_single_bit(word in any::<u64>(), bit in 0u32..64) {
        let code = encode(word);
        prop_assert_eq!(decode(word ^ (1u64 << bit), code), Decoded::Corrected(word));
    }

    #[test]
    fn secded_detects_every_double_bit(word in any::<u64>(), a in 0u32..64, b in 0u32..64) {
        prop_assume!(a != b);
        let code = encode(word);
        let bad = word ^ (1u64 << a) ^ (1u64 << b);
        prop_assert_eq!(decode(bad, code), Decoded::DoubleError);
    }

    #[test]
    fn parity_catches_any_odd_corruption(word in any::<u64>(), bit in 0u32..64) {
        let p = byte_parity(word);
        prop_assert!(check_byte_parity(word, p));
        prop_assert!(!check_byte_parity(word ^ (1u64 << bit), p));
    }

    #[test]
    fn chipkill_roundtrip(data in any::<[u8; 8]>()) {
        let chk = chipkill::encode(&data);
        prop_assert_eq!(chipkill::decode(&data, chk), SymbolDecoded::Clean(data));
    }

    #[test]
    fn chipkill_corrects_any_single_symbol(
        data in any::<[u8; 8]>(),
        pos in 0usize..8,
        err in 1u8..=255,
    ) {
        let chk = chipkill::encode(&data);
        let mut bad = data;
        bad[pos] ^= err;
        prop_assert_eq!(
            chipkill::decode(&bad, chk),
            SymbolDecoded::Corrected { data, position: pos }
        );
    }

    #[test]
    fn chipkill_never_miscorrects_double_symbols(
        data in any::<[u8; 8]>(),
        a in 0usize..8,
        b in 0usize..8,
        ea in 1u8..=255,
        eb in 1u8..=255,
    ) {
        prop_assume!(a != b);
        let chk = chipkill::encode(&data);
        let mut bad = data;
        bad[a] ^= ea;
        bad[b] ^= eb;
        // Distance 4 guarantees every double-symbol error is *detected*.
        prop_assert_eq!(chipkill::decode(&bad, chk), SymbolDecoded::MultiSymbolError);
    }

    #[test]
    fn chipkill_line_survives_any_whole_chip(
        words in any::<[u64; 8]>(),
        chip in 0usize..8,
        garbage in any::<u64>(),
    ) {
        let checks = chipkill::encode_line(&words);
        let mut bad = words;
        bad[chip] = garbage;
        prop_assert_eq!(chipkill::decode_line(&bad, &checks), Some(words));
    }
}
