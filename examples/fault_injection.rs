//! Fault injection: the paper's two-stage error handling (§4.2.3).
//!
//! The critical word is forwarded after a per-byte parity check only;
//! SECDED over the full line restores single-error-correct /
//! double-error-detect coverage when the slow part arrives. This example
//! shows (1) the codes themselves under injected faults and (2) the
//! system-level effect of parity errors: deferred wake-ups.
//!
//! ```sh
//! cargo run --release --example fault_injection
//! ```

use cwfmem::ecc::inject::FaultInjector;
use cwfmem::ecc::secded::{decode, encode, Decoded};
use cwfmem::ecc::{byte_parity, check_critical_word, CriticalWordCheck};
use cwfmem::sim::config::MemKind;
use cwfmem::sim::{run_benchmark, RunConfig};

fn main() {
    println!("== part 1: codes under injected faults ==\n");
    let mut inj = FaultInjector::new(42, 1.0, 0.0);
    let (mut corrected, mut detected, mut early, mut deferred) = (0u32, 0u32, 0u32, 0u32);
    for i in 0..10_000u64 {
        let word = i.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let code = encode(word);
        let parity = byte_parity(word);
        // Single-bit fault on the critical word in the RLDRAM DIMM:
        let (bad, _) = inj.corrupt(word);
        match check_critical_word(bad, parity) {
            CriticalWordCheck::ForwardEarly => early += 1,
            CriticalWordCheck::WaitForSecded => deferred += 1,
        }
        match decode(bad, code) {
            Decoded::Corrected(w) if w == word => corrected += 1,
            Decoded::DoubleError => detected += 1,
            other => panic!("unexpected decode {other:?}"),
        }
    }
    println!("10000 single-bit faults:");
    println!("  parity deferred the early wake for {deferred} (forwarded {early})");
    println!("  SECDED corrected {corrected}, flagged {detected} as uncorrectable\n");

    let mut inj2 = FaultInjector::new(7, 1.0, 1.0);
    let mut double_detected = 0u32;
    for i in 0..10_000u64 {
        let word = i.wrapping_mul(0xD134_2543_DE82_EF95);
        let code = encode(word);
        if decode(inj2.flip_exact(word, 2), code) == Decoded::DoubleError {
            double_detected += 1;
        }
    }
    println!("10000 double-bit faults: SECDED detected {double_detected} (fail-stop)\n");

    println!("== part 2: system effect of critical-word parity errors ==\n");
    let reads = 5_000;
    for rate in [0.0, 0.05, 1.0] {
        let mut cfg = RunConfig::paper(MemKind::Rl, reads);
        cfg.parity_error_rate = rate;
        let m = run_benchmark(&cfg, "libquantum");
        let cwf = m.cwf.expect("RL is CWF");
        println!(
            "parity error rate {rate:>4}: ipc {:.2}, cw latency {:.1} ns, early wakes {:.0}%, deferred {}",
            m.ipc_total(),
            m.avg_cw_latency_ns(),
            cwf.served_fast_fraction() * 100.0,
            cwf.parity_errors,
        );
    }
    println!(
        "\nWith rate 1.0 every early wake is suppressed: the critical word waits\n\
         for the full line + SECDED, collapsing RL to slow-part latency —\n\
         the paper's worst-case fallback behaviour."
    );
}
