//! Quickstart: run one benchmark on the paper's flagship RL organization
//! (RLDRAM3 critical store + LPDDR2 bulk) and compare it with the DDR3
//! baseline.
//!
//! ```sh
//! cargo run --release --example quickstart [benchmark]
//! ```

use cwfmem::power::LpddrIo;
use cwfmem::sim::config::MemKind;
use cwfmem::sim::{run_benchmark, RunConfig};

fn main() {
    let bench = std::env::args().nth(1).unwrap_or_else(|| "leslie3d".to_owned());
    let reads = 10_000;
    println!("== cwfmem quickstart: {bench}, {reads} DRAM reads, 8 cores ==\n");

    let base = run_benchmark(&RunConfig::paper(MemKind::Ddr3, reads), &bench);
    let rl = run_benchmark(&RunConfig::paper(MemKind::Rl, reads), &bench);

    println!("{:<28} {:>12} {:>12}", "", "DDR3 base", "RL (CWF)");
    let row = |k: &str, a: String, b: String| println!("{k:<28} {a:>12} {b:>12}");
    row("aggregate IPC", format!("{:.2}", base.ipc_total()), format!("{:.2}", rl.ipc_total()));
    row(
        "critical-word latency (ns)",
        format!("{:.1}", base.avg_cw_latency_ns()),
        format!("{:.1}", rl.avg_cw_latency_ns()),
    );
    row(
        "read latency queue+svc (ns)",
        format!("{:.1}", base.avg_read_latency_ns()),
        format!("{:.1}", rl.avg_read_latency_ns()),
    );
    row(
        "data-bus utilization",
        format!("{:.1}%", base.bus_utilization() * 100.0),
        format!("{:.1}%", rl.bus_utilization() * 100.0),
    );
    row(
        "DRAM power (W)",
        format!("{:.2}", base.dram_power_w(LpddrIo::ServerAdapted)),
        format!("{:.2}", rl.dram_power_w(LpddrIo::ServerAdapted)),
    );
    if let Some(cwf) = rl.cwf {
        println!(
            "\nRL details: {:.0}% of critical words served by the RLDRAM3 DIMM;",
            cwf.served_fast_fraction() * 100.0
        );
        println!(
            "the fast part arrived on average {:.0} CPU cycles before the rest of the line",
            cwf.avg_head_start()
        );
    }
    println!(
        "\nthroughput vs baseline: {:+.1}%",
        (rl.ipc_total() / base.ipc_total() - 1.0) * 100.0
    );
}
