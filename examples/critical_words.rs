//! Critical-word regularity explorer (paper Figures 3 & 4, Appendix A).
//!
//! Replays each benchmark's LLC-filtered access stream and prints the
//! per-word critical distribution, showing why a *static* word-0 placement
//! already covers most fetches for streaming programs while pointer
//! chasers need the adaptive scheme.
//!
//! ```sh
//! cargo run --release --example critical_words
//! ```

use cwfmem::cache::{Cache, CacheCfg, LineMeta};
use cwfmem::cpu::{TraceOp, TraceSource};
use cwfmem::workloads::{suite, TraceGen};

fn main() {
    let misses_target = 20_000u64;
    println!("== critical word distribution at the DRAM level (first touch per line) ==\n");
    println!(
        "{:<12} {:>6} {:>6} {:>6} {:>6} {:>6} {:>6} {:>6} {:>6}   verdict",
        "bench", "w0", "w1", "w2", "w3", "w4", "w5", "w6", "w7"
    );
    let mut word0_over_half = 0;
    for profile in suite() {
        let mut l2 = Cache::new(CacheCfg::l2_4m_8way());
        let mut gens: Vec<TraceGen> = (0..8).map(|c| TraceGen::new(profile, c, 99)).collect();
        let mut hist = [0u64; 8];
        let mut seen = 0u64;
        let mut core = 0usize;
        while seen < misses_target {
            let op = gens[core].next_op();
            core = (core + 1) % gens.len();
            let (TraceOp::Load { addr, .. } | TraceOp::Store { addr, .. }) = op else {
                continue;
            };
            let line = addr >> 6;
            if l2.lookup(line).is_none() {
                l2.insert(line, LineMeta::default());
                hist[((addr >> 3) & 7) as usize] += 1;
                seen += 1;
            }
        }
        let total: u64 = hist.iter().sum();
        let w0 = hist[0] as f64 / total as f64;
        if w0 > 0.5 {
            word0_over_half += 1;
        }
        print!("{:<12}", profile.name);
        for h in hist {
            print!(" {:>5.1}%", h as f64 / total as f64 * 100.0);
        }
        println!("   {}", if w0 > 0.5 { "word-0 dominant" } else { "no bias (chaser)" });
    }
    println!(
        "\n{word0_over_half} of {} programs have word 0 critical in >50% of fetches \
         (paper: 21 of 27)",
        suite().len()
    );
}
