//! Latency waterfall: decompose every traced DRAM read into pipeline
//! stages and print the five slowest, stage by stage.
//!
//! ```sh
//! cargo run --release --example latency_waterfall [benchmark] [mem]
//! ```
//!
//! `mem` is any `MemKind` name (`ddr3`, `rl`, `lp`, ...; default `rl`).

use cwfmem::sim::config::MemKind;
use cwfmem::sim::{run_benchmark_traced, RunConfig};
use cwfmem::tracelog::waterfall::STAGE_NAMES;

fn main() {
    const KINDS: [MemKind; 9] = [
        MemKind::Ddr3,
        MemKind::Lpddr2,
        MemKind::Rldram3,
        MemKind::Rd,
        MemKind::Rl,
        MemKind::Dl,
        MemKind::RlAdaptive,
        MemKind::RlOracle,
        MemKind::RlRandom,
    ];
    let bench = std::env::args().nth(1).unwrap_or_else(|| "mcf".to_owned());
    let mem = std::env::args().nth(2).map_or(MemKind::Rl, |s| {
        KINDS
            .into_iter()
            .find(|k| k.slug() == s)
            .unwrap_or_else(|| panic!("unknown memory kind '{s}'"))
    });
    let reads = 5_000;
    println!("== latency waterfall: {bench} on {mem:?}, {reads} DRAM reads ==\n");

    let cfg = RunConfig { trace: true, ..RunConfig::paper(mem, reads) };
    let (_m, _k, _v, trace) = run_benchmark_traced(&cfg, &bench);
    let t = trace.expect("trace enabled above");

    println!(
        "{} events traced ({} dropped), {} reads decomposed, {} incomplete\n",
        t.events.len(),
        t.dropped,
        t.summary.reads,
        t.summary.incomplete
    );

    println!("average stage widths (CPU cycles):");
    for (i, name) in STAGE_NAMES.iter().enumerate() {
        println!("  {name:<10} {:>8.1}", t.summary.avg_stage(i));
    }

    println!("\ntop 5 slowest reads:");
    println!(
        "{:>8} {:>4} {:>3} {:>9} {:>7}  queue/act/cas/bus/cw/tail",
        "token", "core", "cw", "alloc@", "total"
    );
    for w in t.top_slowest(5) {
        println!(
            "{:>8} {:>4} {:>3} {:>9} {:>7}  {}",
            w.token.0,
            w.core,
            w.critical_word,
            w.alloc_at,
            w.total,
            w.stages.map(|s| s.to_string()).join("/")
        );
    }
}
