//! Design-space walk: every memory organization of the paper on one
//! benchmark, with throughput, critical-word latency and DRAM power.
//!
//! ```sh
//! cargo run --release --example design_space [benchmark] [reads]
//! ```

use cwfmem::power::LpddrIo;
use cwfmem::sim::config::MemKind;
use cwfmem::sim::{run_benchmark, RunConfig};

fn main() {
    let bench = std::env::args().nth(1).unwrap_or_else(|| "libquantum".to_owned());
    let reads: u64 = std::env::args().nth(2).and_then(|v| v.parse().ok()).unwrap_or(8_000);
    println!("== design space on {bench} ({reads} DRAM reads) ==\n");
    println!(
        "{:<10} {:>10} {:>12} {:>12} {:>10} {:>10}",
        "config", "IPC", "vs DDR3", "cw-lat (ns)", "DRAM W", "cw-fast"
    );

    let kinds = [
        MemKind::Ddr3,
        MemKind::Lpddr2,
        MemKind::Rldram3,
        MemKind::Dl,
        MemKind::Rl,
        MemKind::RlAdaptive,
        MemKind::RlOracle,
        MemKind::Rd,
        MemKind::RlRandom,
    ];
    let mut base_ipc = None;
    for kind in kinds {
        let m = run_benchmark(&RunConfig::paper(kind, reads), &bench);
        let ipc = m.ipc_total();
        let base = *base_ipc.get_or_insert(ipc);
        println!(
            "{:<10} {:>10.2} {:>11.1}% {:>12.1} {:>10.2} {:>10}",
            kind.label(),
            ipc,
            (ipc / base - 1.0) * 100.0,
            m.avg_cw_latency_ns(),
            m.dram_power_w(LpddrIo::ServerAdapted),
            m.cwf.map_or_else(
                || "-".to_owned(),
                |c| format!("{:.0}%", c.served_fast_fraction() * 100.0)
            ),
        );
    }
    println!("\n(cw-fast: critical words served by the fast DIMM; '-' for non-CWF designs)");
}
