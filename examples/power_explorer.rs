//! Power-model explorer (paper Figure 2 and §6.1.3).
//!
//! Sweeps the open-loop chip-power model across bus utilizations, then
//! decomposes the DRAM power of a real RL run by component and by device
//! type — including the §7.2 unterminated-LPDDR variant.
//!
//! ```sh
//! cargo run --release --example power_explorer
//! ```

use cwfmem::dram::{DeviceConfig, DeviceKind};
use cwfmem::power::{power_at_utilization, IddTable, LpddrIo};
use cwfmem::sim::config::MemKind;
use cwfmem::sim::{run_benchmark, RunConfig};

fn main() {
    println!("== chip power vs utilization (Figure 2) ==\n");
    println!(
        "{:<6} {:>9} {:>9} {:>9} {:>14}",
        "util", "RLDRAM3", "DDR3", "LPDDR2", "LPDDR2-unterm"
    );
    let parts = [
        (IddTable::rldram3_x18(), DeviceConfig::rldram3()),
        (IddTable::ddr3(), DeviceConfig::ddr3_1600()),
        (IddTable::lpddr2_server(), DeviceConfig::lpddr2_800()),
        (IddTable::lpddr2_unterminated(), DeviceConfig::lpddr2_800()),
    ];
    for u in [0.0, 0.1, 0.2, 0.4, 0.6, 0.8, 1.0] {
        print!("{:<6}", format!("{:.0}%", u * 100.0));
        for (idd, cfg) in &parts {
            print!(" {:>9.3}", power_at_utilization(idd, cfg, u, 0.7).total_w());
        }
        println!();
    }

    println!("\n== DRAM power of a real RL run (stream, 8000 reads) ==\n");
    let m = run_benchmark(&RunConfig::paper(MemKind::Rl, 8_000), "stream");
    for io in [LpddrIo::ServerAdapted, LpddrIo::Unterminated] {
        let b = m.dram_power_breakdown(io);
        println!("LPDDR2 I/O = {io:?}:");
        println!(
            "  background {:.3} W | activate {:.3} W | read {:.3} W | write {:.3} W | refresh {:.3} W | termination {:.3} W",
            b.background_w, b.activate_w, b.read_w, b.write_w, b.refresh_w, b.termination_w
        );
        println!(
            "  total {:.3} W  (RLDRAM3 share {:.3} W, LPDDR2 share {:.3} W)\n",
            b.total_w(),
            m.dram_power_of_kind_w(DeviceKind::Rldram3, io),
            m.dram_power_of_kind_w(DeviceKind::Lpddr2, io),
        );
    }
    println!(
        "The unterminated (Malladi-style, §7.2) LPDDR2 removes ODT/DLL static\n\
         power and mobile-class idle currents cut the background component —\n\
         the paper reports energy savings growing to 26.1% with this variant."
    );
}
