//! Regenerate the pinned values for `tests/golden.rs`.
//!
//! Run after any deliberate behavioural change and copy the printed rows
//! into the `GOLDEN` table:
//!
//! ```sh
//! cargo run --release --example golden_gen
//! ```

use cwfmem::dram::DeviceKind;
use cwfmem::sim::config::MemKind;
use cwfmem::sim::{run_benchmark, RunConfig};

fn main() {
    for (kind, bench) in [
        (MemKind::Ddr3, "leslie3d"),
        (MemKind::Rl, "leslie3d"),
        (MemKind::RlAdaptive, "mcf"),
        (MemKind::Spec(DeviceKind::Ddr5), "leslie3d"),
        (MemKind::SpecCwf(DeviceKind::Rldram3, DeviceKind::Ddr5), "mcf"),
    ] {
        let m = run_benchmark(&RunConfig::quick(kind, 1_500), bench);
        println!(
            "({:?}, \"{}\"): cycles={} insts={} reads={} writes={} hist={:?}",
            kind,
            bench,
            m.cycles,
            m.insts_per_core.iter().sum::<u64>(),
            m.dram_reads,
            m.dram_writes,
            m.hier.critical_word_hist
        );
    }
}
